"""Tests for the discrete-event loop."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.hpc.events import EventLoop


class TestScheduling:
    def test_schedule_and_run(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [5.0]
        assert loop.now == 5.0

    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(3.0, lambda: order.append("c"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(2.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("low"), priority=10)
        loop.schedule(1.0, lambda: order.append("high"), priority=0)
        loop.run()
        assert order == ["high", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("first"))
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run()
        assert order == ["first", "second"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(5.0, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(depth):
            fired.append(loop.now)
            if depth > 0:
                loop.schedule(1.0, chain, depth - 1)

        loop.schedule(0.0, chain, 3)
        loop.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_kwargs_passed_to_callback(self):
        loop = EventLoop()
        seen = {}
        loop.schedule(1.0, lambda **kw: seen.update(kw), tag="x")
        loop.run()
        assert seen == {"tag": "x"}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        loop.run()
        assert fired == []

    def test_pending_ignores_cancelled(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        event.cancel()
        assert loop.pending == 1


class TestRunUntil:
    def test_run_until_advances_clock_even_without_events(self):
        loop = EventLoop()
        executed = loop.run_until(100.0)
        assert executed == 0
        assert loop.now == 100.0

    def test_run_until_only_runs_due_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append("early"))
        loop.schedule(10.0, lambda: fired.append("late"))
        loop.run_until(5.0)
        assert fired == ["early"]
        assert loop.pending == 1

    def test_run_until_past_raises(self):
        loop = EventLoop(start_time=50.0)
        with pytest.raises(SimulationError):
            loop.run_until(10.0)

    def test_advance_relative(self):
        loop = EventLoop(start_time=5.0)
        loop.advance(10.0)
        assert loop.now == 15.0

    def test_max_events_bound(self):
        loop = EventLoop()
        for index in range(10):
            loop.schedule(float(index), lambda: None)
        executed = loop.run(max_events=3)
        assert executed == 3
        assert loop.pending == 7

    def test_peek_and_processed(self):
        loop = EventLoop()
        assert loop.peek() is None
        loop.schedule(2.0, lambda: None)
        assert loop.peek() == 2.0
        loop.run()
        assert loop.processed == 1
