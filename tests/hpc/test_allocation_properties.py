"""Property-based tests: the allocator never oversubscribes and always balances."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AllocationError, InsufficientResourcesError
from repro.hpc.allocation import NodeAllocator
from repro.hpc.resources import ResourceRequest, amarel_platform

# A random program of allocate/release operations.  The tuple is filtered
# *before* constructing the request so invalid combinations (no cores and no
# GPUs) never reach the validating constructor.
_request_strategy = (
    st.tuples(
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0.5, max_value=160.0),
    )
    .filter(lambda t: t[0] > 0 or t[1] > 0)
    .map(lambda t: ResourceRequest(cpu_cores=t[0], gpus=t[1], memory_gb=t[2]))
)

_ops_strategy = st.lists(
    st.tuples(st.sampled_from(["alloc", "release"]), _request_strategy, st.integers(0, 10)),
    min_size=1,
    max_size=60,
)


@given(_ops_strategy)
@settings(max_examples=100, deadline=None)
def test_allocator_never_oversubscribes(ops):
    allocator = NodeAllocator(amarel_platform(1))
    live = []
    for action, request, index in ops:
        if action == "alloc":
            try:
                live.append(allocator.allocate(request))
            except (AllocationError, InsufficientResourcesError):
                pass
        elif live:
            allocation = live.pop(index % len(live))
            allocator.release(allocation)

        # Invariants: free counts stay within physical bounds and match the
        # sum of live allocations.
        assert 0 <= allocator.free_cores() <= 28
        assert 0 <= allocator.free_gpus() <= 4
        assert allocator.free_memory_gb() >= -1e-6
        busy_cores = sum(a.cpu_cores for a in live)
        busy_gpus = sum(a.gpus for a in live)
        assert allocator.free_cores() == 28 - busy_cores
        assert allocator.free_gpus() == 4 - busy_gpus

    # Releasing everything restores the pristine platform.
    for allocation in live:
        allocator.release(allocation)
    assert allocator.free_cores() == 28
    assert allocator.free_gpus() == 4
    assert allocator.free_memory_gb() == 128.0


@given(st.lists(_request_strategy, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_allocated_device_ids_always_disjoint(requests):
    allocator = NodeAllocator(amarel_platform(1))
    live = []
    for request in requests:
        try:
            live.append(allocator.allocate(request))
        except (AllocationError, InsufficientResourcesError):
            continue
    seen_cores = set()
    seen_gpus = set()
    for allocation in live:
        cores = {(allocation.node, c) for c in allocation.cpu_core_ids}
        gpus = {(allocation.node, g) for g in allocation.gpu_ids}
        assert not cores & seen_cores
        assert not gpus & seen_gpus
        seen_cores |= cores
        seen_gpus |= gpus
