"""Tests for resource specs and the node allocator."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AllocationError,
    ConfigurationError,
    InsufficientResourcesError,
)
from repro.hpc.allocation import NodeAllocator
from repro.hpc.resources import (
    AMAREL_NODE,
    NodeSpec,
    PlatformSpec,
    ResourceRequest,
    amarel_platform,
    single_node_platform,
)


class TestResourceRequest:
    def test_defaults(self):
        request = ResourceRequest()
        assert request.cpu_cores == 1
        assert request.gpus == 0

    def test_rejects_zero_everything(self):
        with pytest.raises(ConfigurationError):
            ResourceRequest(cpu_cores=0, gpus=0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ResourceRequest(cpu_cores=-1)

    def test_scaled(self):
        request = ResourceRequest(cpu_cores=2, gpus=1, memory_gb=4.0).scaled(3)
        assert (request.cpu_cores, request.gpus, request.memory_gb) == (6, 3, 12.0)

    def test_scaled_rejects_zero_factor(self):
        with pytest.raises(ConfigurationError):
            ResourceRequest(cpu_cores=1).scaled(0)


class TestSpecs:
    def test_amarel_node_matches_paper(self):
        assert AMAREL_NODE.cpu_cores == 28
        assert AMAREL_NODE.gpus == 4
        assert AMAREL_NODE.memory_gb == 128.0
        assert AMAREL_NODE.gpu_memory_gb == 12.0

    def test_amarel_platform_totals(self):
        spec = amarel_platform(2)
        assert spec.total_cpu_cores == 56
        assert spec.total_gpus == 8

    def test_amarel_platform_requires_positive_nodes(self):
        with pytest.raises(ConfigurationError):
            amarel_platform(0)

    def test_node_can_ever_fit(self):
        assert AMAREL_NODE.can_ever_fit(ResourceRequest(cpu_cores=28, gpus=4))
        assert not AMAREL_NODE.can_ever_fit(ResourceRequest(cpu_cores=29))

    def test_platform_rejects_duplicate_node_names(self):
        node = NodeSpec(name="n", cpu_cores=4, gpus=0, memory_gb=8.0)
        with pytest.raises(ConfigurationError):
            PlatformSpec(name="p", nodes=(node, node))

    def test_platform_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            PlatformSpec(name="p", nodes=())

    def test_single_node_platform_shape(self):
        spec = single_node_platform(cpu_cores=16, gpus=2)
        assert spec.total_cpu_cores == 16
        assert spec.total_gpus == 2

    def test_describe_keys(self):
        assert {"name", "nodes", "cpu_cores", "gpus", "memory_gb"} <= set(
            amarel_platform().describe()
        )


class TestNodeAllocator:
    def setup_method(self):
        self.allocator = NodeAllocator(amarel_platform(1))

    def test_initial_capacity(self):
        assert self.allocator.free_cores() == 28
        assert self.allocator.free_gpus() == 4
        assert self.allocator.busy_cores() == 0

    def test_allocate_reduces_free(self):
        self.allocator.allocate(ResourceRequest(cpu_cores=8, gpus=1, memory_gb=16))
        assert self.allocator.free_cores() == 20
        assert self.allocator.free_gpus() == 3
        assert self.allocator.free_memory_gb() == pytest.approx(112.0)

    def test_release_restores_capacity(self):
        allocation = self.allocator.allocate(ResourceRequest(cpu_cores=8, gpus=2))
        self.allocator.release(allocation)
        assert self.allocator.free_cores() == 28
        assert self.allocator.free_gpus() == 4

    def test_device_ids_are_disjoint_across_live_allocations(self):
        a = self.allocator.allocate(ResourceRequest(cpu_cores=4, gpus=1))
        b = self.allocator.allocate(ResourceRequest(cpu_cores=4, gpus=1))
        assert not set(a.cpu_core_ids) & set(b.cpu_core_ids)
        assert not set(a.gpu_ids) & set(b.gpu_ids)

    def test_impossible_request_raises_insufficient(self):
        with pytest.raises(InsufficientResourcesError):
            self.allocator.allocate(ResourceRequest(cpu_cores=64))

    def test_temporarily_unavailable_raises_allocation_error(self):
        self.allocator.allocate(ResourceRequest(cpu_cores=28))
        with pytest.raises(AllocationError):
            self.allocator.allocate(ResourceRequest(cpu_cores=1))

    def test_double_release_raises(self):
        allocation = self.allocator.allocate(ResourceRequest(cpu_cores=1))
        self.allocator.release(allocation)
        with pytest.raises(AllocationError):
            self.allocator.release(allocation)

    def test_fits_now_tracks_state(self):
        request = ResourceRequest(cpu_cores=28)
        assert self.allocator.fits_now(request)
        self.allocator.allocate(request)
        assert not self.allocator.fits_now(request)

    def test_utilization_fractions(self):
        self.allocator.allocate(ResourceRequest(cpu_cores=14, gpus=2, memory_gb=64))
        utilization = self.allocator.utilization()
        assert utilization["cpu"] == pytest.approx(0.5)
        assert utilization["gpu"] == pytest.approx(0.5)
        assert utilization["memory"] == pytest.approx(0.5)

    def test_multi_node_spillover(self):
        allocator = NodeAllocator(amarel_platform(2))
        first = allocator.allocate(ResourceRequest(cpu_cores=28))
        second = allocator.allocate(ResourceRequest(cpu_cores=28))
        assert first.node != second.node

    def test_live_allocations_listing(self):
        allocation = self.allocator.allocate(ResourceRequest(cpu_cores=2))
        assert allocation in self.allocator.live_allocations
        self.allocator.release(allocation)
        assert self.allocator.live_allocations == []
