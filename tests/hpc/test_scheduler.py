"""Tests for the agent-side placement schedulers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, SchedulingError
from repro.hpc.allocation import NodeAllocator
from repro.hpc.resources import ResourceRequest, amarel_platform
from repro.hpc.scheduler import (
    BackfillScheduler,
    FifoScheduler,
    QueuedRequest,
    make_scheduler,
)


def _queued(uid: str, cores: int = 1, gpus: int = 0) -> QueuedRequest:
    return QueuedRequest(
        request_id=uid,
        request=ResourceRequest(cpu_cores=cores, gpus=gpus),
        enqueue_time=0.0,
    )


@pytest.fixture()
def allocator():
    return NodeAllocator(amarel_platform(1))


class TestFifoScheduler:
    def test_places_in_arrival_order(self, allocator):
        scheduler = FifoScheduler(allocator)
        scheduler.submit(_queued("a", cores=4))
        scheduler.submit(_queued("b", cores=4))
        placed = scheduler.try_place()
        assert [item.request_id for item, _ in placed] == ["a", "b"]
        assert scheduler.queue_length == 0

    def test_head_of_line_blocking(self, allocator):
        scheduler = FifoScheduler(allocator)
        allocator.allocate(ResourceRequest(cpu_cores=27))
        scheduler.submit(_queued("big", cores=4))
        scheduler.submit(_queued("small", cores=1))
        placed = scheduler.try_place()
        # FIFO refuses to skip over the blocked head even though "small" fits.
        assert placed == []
        assert scheduler.queue_length == 2

    def test_rejects_impossible_request(self, allocator):
        scheduler = FifoScheduler(allocator)
        with pytest.raises(SchedulingError):
            scheduler.submit(_queued("too-big", cores=100))

    def test_limit_caps_placements(self, allocator):
        scheduler = FifoScheduler(allocator)
        for index in range(5):
            scheduler.submit(_queued(f"t{index}", cores=1))
        placed = scheduler.try_place(limit=2)
        assert len(placed) == 2
        assert scheduler.queue_length == 3

    def test_cancel_waiting_request(self, allocator):
        scheduler = FifoScheduler(allocator)
        scheduler.submit(_queued("x"))
        assert scheduler.cancel("x") is True
        assert scheduler.cancel("x") is False
        assert scheduler.queue_length == 0

    def test_waiting_snapshot_preserves_order(self, allocator):
        scheduler = FifoScheduler(allocator)
        scheduler.submit(_queued("a"))
        scheduler.submit(_queued("b"))
        assert [item.request_id for item in scheduler.waiting()] == ["a", "b"]


class TestBackfillScheduler:
    def test_backfills_past_blocked_head(self, allocator):
        scheduler = BackfillScheduler(allocator)
        allocator.allocate(ResourceRequest(cpu_cores=27))
        scheduler.submit(_queued("big", cores=4))
        scheduler.submit(_queued("small", cores=1))
        placed = scheduler.try_place()
        assert [item.request_id for item, _ in placed] == ["small"]
        assert scheduler.queue_length == 1

    def test_window_limits_lookahead(self, allocator):
        scheduler = BackfillScheduler(allocator, window=1)
        allocator.allocate(ResourceRequest(cpu_cores=27))
        scheduler.submit(_queued("big", cores=4))
        scheduler.submit(_queued("also-big", cores=3))
        scheduler.submit(_queued("small", cores=1))  # beyond the window
        placed = scheduler.try_place()
        assert placed == []

    def test_invalid_window(self, allocator):
        with pytest.raises(ConfigurationError):
            BackfillScheduler(allocator, window=0)

    def test_gpu_requests_respected(self, allocator):
        scheduler = BackfillScheduler(allocator)
        for index in range(6):
            scheduler.submit(_queued(f"gpu{index}", cores=1, gpus=1))
        placed = scheduler.try_place()
        assert len(placed) == 4  # only four GPUs exist
        assert scheduler.queue_length == 2


class TestMakeScheduler:
    def test_factory_builds_fifo(self, allocator):
        assert isinstance(make_scheduler("fifo", allocator), FifoScheduler)

    def test_factory_builds_backfill_with_kwargs(self, allocator):
        scheduler = make_scheduler("backfill", allocator, window=3)
        assert isinstance(scheduler, BackfillScheduler)
        assert scheduler.window == 3

    def test_factory_rejects_unknown_policy(self, allocator):
        with pytest.raises(ConfigurationError):
            make_scheduler("random-policy", allocator)
