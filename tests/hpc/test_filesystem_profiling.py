"""Tests for the filesystem cost model, the profiler and the platform facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.hpc.filesystem import FilesystemSpec, SharedFilesystem
from repro.hpc.platform import ComputePlatform
from repro.hpc.profiling import ExecutionProfiler, PhaseInterval, ResourceInterval
from repro.hpc.resources import amarel_platform


class TestFilesystemSpec:
    def test_defaults_valid(self):
        spec = FilesystemSpec()
        assert spec.read_bandwidth_gb_s > 0

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            FilesystemSpec(read_bandwidth_gb_s=0)

    def test_negative_latency(self):
        with pytest.raises(ConfigurationError):
            FilesystemSpec(metadata_latency_s=-1)


class TestSharedFilesystem:
    def test_read_time_scales_with_volume(self):
        fs = SharedFilesystem(FilesystemSpec(read_bandwidth_gb_s=2.0, metadata_latency_s=0.0))
        assert fs.read_time(4.0) == pytest.approx(2.0)
        assert fs.read_time(8.0) == pytest.approx(4.0)

    def test_metadata_latency_added_per_file(self):
        fs = SharedFilesystem(FilesystemSpec(metadata_latency_s=0.1))
        base = fs.read_time(0.0, files=0)
        with_files = fs.read_time(0.0, files=5)
        assert with_files - base == pytest.approx(0.5)

    def test_contention_halves_bandwidth(self):
        fs = SharedFilesystem(FilesystemSpec(read_bandwidth_gb_s=2.0, metadata_latency_s=0.0))
        solo = fs.read_time(4.0)
        fs.register_reader()
        fs.register_reader()
        contended = fs.read_time(4.0)
        assert contended == pytest.approx(2 * solo)
        fs.unregister_reader()
        fs.unregister_reader()

    def test_unbalanced_unregister_raises(self):
        fs = SharedFilesystem()
        with pytest.raises(ConfigurationError):
            fs.unregister_reader()

    def test_write_time_and_counters(self):
        fs = SharedFilesystem(FilesystemSpec(write_bandwidth_gb_s=1.0, metadata_latency_s=0.0))
        assert fs.write_time(3.0) == pytest.approx(3.0)
        assert fs.counters()["bytes_written"] == pytest.approx(3.0e9)

    def test_sandbox_setup_time(self):
        fs = SharedFilesystem(FilesystemSpec(metadata_latency_s=0.02))
        assert fs.sandbox_setup_time(files=6) == pytest.approx(0.12)

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedFilesystem().read_time(-1.0)


def _interval(task: str, start: float, end: float, cores=(0,), gpus=()):
    return ResourceInterval(
        task_id=task, node="amarel-gpu-node-000",
        cpu_core_ids=tuple(cores), gpu_ids=tuple(gpus), start=start, end=end,
    )


class TestExecutionProfiler:
    def setup_method(self):
        self.profiler = ExecutionProfiler(amarel_platform(1))

    def test_empty_profiler_raises_on_span(self):
        with pytest.raises(SimulationError):
            self.profiler.span()

    def test_interval_validation(self):
        with pytest.raises(SimulationError):
            _interval("t", 5.0, 1.0)

    def test_makespan_and_busy_seconds(self):
        self.profiler.record_resource_interval(_interval("a", 0.0, 10.0, cores=(0, 1)))
        self.profiler.record_resource_interval(_interval("b", 5.0, 15.0, cores=(2,), gpus=(0,)))
        assert self.profiler.makespan() == pytest.approx(15.0)
        assert self.profiler.busy_core_seconds() == pytest.approx(2 * 10 + 10)
        assert self.profiler.busy_gpu_seconds() == pytest.approx(10.0)

    def test_average_utilization(self):
        # 14 cores busy for the entire window of 10 s -> 50 % CPU.
        self.profiler.record_resource_interval(_interval("a", 0.0, 10.0, cores=tuple(range(14))))
        assert self.profiler.cpu_utilization() == pytest.approx(0.5)
        assert self.profiler.gpu_utilization() == 0.0

    def test_utilization_with_window(self):
        self.profiler.record_resource_interval(_interval("a", 0.0, 10.0, cores=(0,)))
        value = self.profiler.cpu_utilization(window=(0.0, 20.0))
        assert value == pytest.approx(10.0 / (20.0 * 28))

    def test_timeline_shape_and_bounds(self):
        self.profiler.record_resource_interval(_interval("a", 0.0, 50.0, cores=tuple(range(28))))
        centers, series = self.profiler.utilization_timeline("cpu", n_bins=10)
        assert centers.shape == (10,)
        assert series.shape == (10,)
        assert np.all(series <= 1.0 + 1e-9)
        assert np.all(series >= 0.0)
        assert series.mean() == pytest.approx(1.0, rel=1e-6)

    def test_gpu_timeline_counts_only_gpus(self):
        self.profiler.record_resource_interval(_interval("a", 0.0, 10.0, cores=(0,), gpus=(0, 1)))
        _, series = self.profiler.utilization_timeline("gpu", n_bins=5)
        assert series.mean() == pytest.approx(0.5, rel=1e-6)

    def test_phase_totals(self):
        self.profiler.record_phase("t1", "exec_setup", 0.0, 2.0)
        self.profiler.record_phase("t1", "running", 2.0, 12.0)
        self.profiler.record_phase("t2", "running", 5.0, 10.0)
        totals = self.profiler.phase_totals()
        assert totals["exec_setup"] == pytest.approx(2.0)
        assert totals["running"] == pytest.approx(15.0)
        selected = self.profiler.phase_totals(["bootstrap", "running"])
        assert selected["bootstrap"] == 0.0

    def test_device_busy_seconds(self):
        self.profiler.record_resource_interval(_interval("a", 0.0, 8.0, gpus=(1,)))
        busy = self.profiler.device_busy_seconds("gpu")
        assert busy[("amarel-gpu-node-000", 1)] == pytest.approx(8.0)

    def test_concurrency_timeline(self):
        self.profiler.record_resource_interval(_interval("a", 0.0, 10.0))
        self.profiler.record_resource_interval(_interval("b", 0.0, 10.0))
        _, series = self.profiler.concurrency_timeline(n_bins=4)
        assert np.allclose(series, 2.0)

    def test_phase_interval_validation(self):
        with pytest.raises(SimulationError):
            PhaseInterval(entity_id="x", phase="running", start=3.0, end=1.0)


class TestComputePlatform:
    def test_defaults_to_amarel(self):
        platform = ComputePlatform()
        assert platform.spec.total_cpu_cores == 28
        assert platform.spec.total_gpus == 4

    def test_log_records_sim_time(self):
        platform = ComputePlatform()
        platform.loop.schedule(7.0, lambda: platform.log("test", "ping"))
        platform.run()
        record = platform.event_log.last("ping")
        assert record is not None and record.time == 7.0

    def test_describe_includes_filesystem(self):
        assert "filesystem" in ComputePlatform().describe()
