"""The metrics facade: counters, gauges, histograms over the span stream.

Same contract as spans/events, pinned the same way: disabled emission is a
global-read no-op, enabled emission is out-of-band (no failpoint crossings,
no science perturbation — a metrics-enabled sweep finalizes byte-identical
to the serial reference), and the read side reconstructs per-name series
with filters that never mask an unreadable stream.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import faults, telemetry
from repro.core.campaign import CampaignConfig, DesignCampaign
from repro.exceptions import TelemetryError
from repro.experiments import CampaignSuite, SweepSpec, TargetSpec
from repro.experiments.suite import execute_run
from repro.faults import FaultPlan
from repro.orchestrate import WorkQueue, finalize_queue, run_worker
from repro.store import RunStore, prune_store
from repro.telemetry import (
    METRIC_KINDS,
    TELEMETRY_SCHEMA_VERSION,
    MetricSeries,
    ResourceSampler,
    metrics_from_records,
    read_metrics,
    start_resource_sampler,
)
from repro.telemetry import metrics


@pytest.fixture(autouse=True)
def _clean_switch(monkeypatch):
    """Each test starts untraced and leaves no writer behind."""
    monkeypatch.delenv(telemetry.TELEMETRY_ENV, raising=False)
    telemetry.reset()
    yield
    telemetry.reset()


def _records(directory, **kwargs):
    return telemetry.read_telemetry_dir(directory, **kwargs)


class TestDisabled:
    def test_all_three_verbs_are_no_ops(self, tmp_path):
        metrics.counter("campaign.cycles")
        metrics.gauge("worker.rss_bytes", 123.0)
        metrics.histogram("campaign.cycle_seconds", 0.5)
        assert not telemetry.enabled()
        assert _records(tmp_path) == []

    def test_sampler_factory_returns_none_when_untraced(self):
        assert start_resource_sampler("w0") is None


class TestRecordSchema:
    def test_metric_record_carries_the_full_schema(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0") as writer:
            metrics.counter("campaign.cycles", 2, target="NHERF3")
            [line] = writer.path.read_text(encoding="utf-8").splitlines()
        record = json.loads(line)
        assert record["v"] == TELEMETRY_SCHEMA_VERSION
        assert record["kind"] == "metric"
        assert record["name"] == "campaign.cycles"
        assert record["metric"] == "counter"
        assert record["value"] == 2.0 and isinstance(record["value"], float)
        assert record["pid"] == os.getpid()
        assert record["worker"] == "w0"
        assert record["attrs"] == {"target": "NHERF3"}
        assert isinstance(record["at"], float)

    def test_each_verb_stamps_its_metric_kind(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            metrics.counter("a")
            metrics.gauge("b", 1.0)
            metrics.histogram("c", 2.0)
        kinds = {r["name"]: r["metric"] for r in _records(tmp_path / "telemetry")}
        assert kinds == {"a": "counter", "b": "gauge", "c": "histogram"}
        assert set(kinds.values()) <= set(METRIC_KINDS)

    def test_worker_resolution_matches_events(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "default"):
            metrics.counter("a")
            with telemetry.worker_scope("scoped"):
                metrics.counter("b")
                metrics.counter("c", worker="explicit")
        by_name = {r["name"]: r["worker"] for r in _records(tmp_path / "telemetry")}
        assert by_name == {"a": "default", "b": "scoped", "c": "explicit"}

    def test_unwritable_stream_never_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        with telemetry.scoped(blocker / "telemetry", "w0"):
            metrics.gauge("swallowed", 1.0)


class TestReaderFilters:
    @pytest.fixture()
    def mixed(self, tmp_path):
        directory = tmp_path / "telemetry"
        with telemetry.scoped(directory, "w0"):
            telemetry.event("worker.start")
            with telemetry.span("worker.run", run="r1"):
                metrics.counter("campaign.cycles")
                metrics.gauge("worker.rss_bytes", 100.0)
        return directory

    def test_kinds_filter_selects_record_kinds(self, mixed):
        kinds = {r["kind"] for r in _records(mixed, kinds=("metric",))}
        assert kinds == {"metric"}
        names = {r["name"] for r in _records(mixed, kinds=("span", "event"))}
        assert names == {"worker.start", "worker.run"}

    def test_names_filter_selects_record_names(self, mixed):
        [record] = _records(mixed, names=("campaign.cycles",))
        assert record["kind"] == "metric"
        assert _records(mixed, names=("absent",)) == []

    def test_filters_compose(self, mixed):
        assert _records(mixed, kinds=("span",), names=("campaign.cycles",)) == []

    def test_filters_do_not_mask_an_unreadable_stream(self, tmp_path):
        path = tmp_path / "w0.jsonl"
        newer = {"v": TELEMETRY_SCHEMA_VERSION + 1, "kind": "event", "name": "x"}
        path.write_text(json.dumps(newer) + "\n", encoding="utf-8")
        with pytest.raises(TelemetryError):
            list(telemetry.iter_telemetry_file(path, kinds=("metric",)))


class TestAggregation:
    def test_series_reduce_their_samples(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            for value in (1.0, 3.0, 2.0, 10.0):
                metrics.histogram("campaign.cycle_seconds", value)
        series = read_metrics(tmp_path / "telemetry")["campaign.cycle_seconds"]
        assert series.metric == "histogram"
        assert series.count == 4
        assert series.total == pytest.approx(16.0)
        assert series.mean == pytest.approx(4.0)
        assert series.minimum == 1.0 and series.maximum == 10.0
        assert series.last == 10.0
        assert series.percentile(50) == pytest.approx(2.0)
        assert series.percentile(100) == pytest.approx(10.0)

    def test_by_worker_splits_a_shared_series(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            metrics.counter("campaign.cycles", worker="w0")
            metrics.counter("campaign.cycles", worker="w1")
            metrics.counter("campaign.cycles", worker="w1")
        series = read_metrics(tmp_path / "telemetry")["campaign.cycles"]
        split = series.by_worker()
        assert split["w0"].count == 1 and split["w1"].count == 2

    def test_names_filter_reads_only_the_requested_series(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            metrics.counter("kept")
            metrics.counter("dropped")
        series = read_metrics(tmp_path / "telemetry", names=("kept",))
        assert list(series) == ["kept"]

    def test_non_metric_records_are_ignored(self):
        records = [
            {"kind": "event", "name": "worker.start", "at": 1.0},
            {
                "kind": "metric", "name": "x", "metric": "gauge",
                "value": 2.0, "at": 2.0, "worker": "w0", "attrs": {},
            },
        ]
        series = metrics_from_records(records)
        assert list(series) == ["x"]
        assert isinstance(series["x"], MetricSeries)


class TestResourceSampler:
    def test_sample_once_emits_labelled_gauges(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "default"):
            sampler = ResourceSampler("w7")
            sampler.sample_once()
        series = read_metrics(tmp_path / "telemetry")
        rss = series["worker.rss_bytes"]
        cpu = series["worker.cpu_seconds"]
        assert rss.metric == "gauge" and cpu.metric == "gauge"
        assert rss.last > 0.0
        assert cpu.last >= 0.0
        # Daemon threads do not inherit worker_scope: the label is explicit.
        assert {s.worker for s in rss.samples} == {"w7"}

    def test_start_stop_lifecycle_emits_samples(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            sampler = start_resource_sampler("w0", interval_seconds=30.0)
            assert sampler is not None
            sampler.stop()
        series = read_metrics(tmp_path / "telemetry")
        # At least the immediate sample and the final stop() sample.
        assert series["worker.rss_bytes"].count >= 2


class TestOutOfBand:
    def test_metric_emission_crosses_no_failpoints(self, tmp_path):
        plan = FaultPlan(0)
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            with faults.injected_plan(plan):
                metrics.counter("campaign.cycles")
                metrics.gauge("worker.rss_bytes", 1.0)
                metrics.histogram("campaign.cycle_seconds", 0.1)
        assert plan.invocations == {}
        assert len(_records(tmp_path / "telemetry")) == 3

    def test_instrumented_campaign_science_is_unperturbed(
        self, tmp_path, four_targets
    ):
        """Metrics-on and metrics-off runs of both protocols produce
        identical science — the emission draws no science RNG."""
        config = CampaignConfig(
            protocol="im-rp", n_cycles=2, n_sequences=4, seed=17
        )
        baseline = DesignCampaign(four_targets[:2], config).run()
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            traced = DesignCampaign(four_targets[:2], config).run()
        assert traced.as_dict() == baseline.as_dict()
        names = {r["name"] for r in _records(tmp_path / "telemetry")}
        assert "campaign.cycles" in names
        assert "campaign.best_composite" in names


class TestMetricsEnabledSweepAcceptance:
    """The PR acceptance criterion, pinned.

    With metrics flowing (campaign instrumentation, resource samplers,
    checkpoint gauges — everything `worker --telemetry` turns on), the
    2-worker finalized ``strip_timing`` store is byte-identical to the
    serial reference.
    """

    SWEEP = SweepSpec(
        protocols=("im-rp", "cont-v"),
        seeds=(3,),
        targets=TargetSpec(kind="named-pdz", seed=11),
        base={"n_cycles": 1, "n_sequences": 4},
    )

    def test_metrics_enabled_two_worker_sweep(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "queue", self.SWEEP)
        with telemetry.scoped(queue.path / "telemetry", "harness"):
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(
                        run_worker,
                        queue,
                        worker_id=f"w{i}",
                        execute=execute_run,
                        lease_seconds=60.0,
                    )
                    for i in range(2)
                ]
                for future in futures:
                    future.result()
            finalized = finalize_queue(
                queue, tmp_path / "finalized.jsonl", strip_timing=True
            )

        serial = RunStore(tmp_path / "serial.jsonl")
        CampaignSuite(self.SWEEP, executor="serial").run(store=serial)
        reference = prune_store(
            serial.path, tmp_path / "serial-canonical.jsonl", strip_timing=True
        )
        assert finalized.path.read_bytes() == reference.path.read_bytes()

        series = read_metrics(queue.path / "telemetry")
        # One cycle per target per run at minimum (subpipelines add more).
        assert series["campaign.cycles"].count >= 8
        # Science metrics, resource gauges and checkpoint sizes all landed.
        assert "campaign.best_composite" in series
        assert "worker.rss_bytes" in series
        assert "checkpoint.bytes" in series
