"""The tracing switch and the stream format.

Two properties carry the whole subsystem: disabled tracing must be an
allocation-free no-op (the benchmark bounds its tax), and enabled tracing
must stay *out-of-band* — no failpoint crossings, no RNG draws, best-effort
writes — so the byte-identity contracts of the orchestrate stack hold with
telemetry on.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import faults, telemetry
from repro.exceptions import TelemetryError
from repro.faults import FaultPlan
from repro.telemetry import TELEMETRY_SCHEMA_VERSION
from repro.telemetry.api import _NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_switch(monkeypatch):
    """Each test starts untraced and leaves no writer behind."""
    monkeypatch.delenv(telemetry.TELEMETRY_ENV, raising=False)
    telemetry.reset()
    yield
    telemetry.reset()


def _records(directory):
    return telemetry.read_telemetry_dir(directory)


class TestDisabled:
    def test_event_is_a_no_op(self, tmp_path):
        telemetry.event("lease.steal", claim="c1")
        assert not telemetry.enabled()
        assert _records(tmp_path) == []

    def test_span_returns_the_shared_null_singleton(self):
        first = telemetry.span("worker.run", run="r1")
        second = telemetry.span("worker.publish")
        assert first is _NULL_SPAN and second is _NULL_SPAN
        with first:
            pass

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with telemetry.span("worker.run"):
                raise RuntimeError("boom")


class TestRecordSchema:
    def test_event_record_carries_the_full_schema(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0") as writer:
            telemetry.event("lease.steal", claim="ab12", lease_age=3.5)
            [line] = writer.path.read_text(encoding="utf-8").splitlines()
        record = json.loads(line)
        assert record["v"] == TELEMETRY_SCHEMA_VERSION
        assert record["kind"] == "event"
        assert record["name"] == "lease.steal"
        assert record["pid"] == os.getpid()
        assert record["worker"] == "w0"
        assert record["attrs"] == {"claim": "ab12", "lease_age": 3.5}
        assert isinstance(record["at"], float)

    def test_span_record_times_its_block(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            with telemetry.span("worker.run", run="r1"):
                pass
        [record] = _records(tmp_path / "telemetry")
        assert record["kind"] == "span"
        assert record["name"] == "worker.run"
        assert record["ok"] is True
        assert record["end"] >= record["start"] > 0.0
        assert record["attrs"] == {"run": "r1"}

    def test_span_marks_failure_and_reraises(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            with pytest.raises(ValueError):
                with telemetry.span("worker.run", run="r1"):
                    raise ValueError("boom")
        [record] = _records(tmp_path / "telemetry")
        assert record["ok"] is False

    def test_unjsonable_attrs_degrade_to_strings(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            telemetry.event("fault", path=tmp_path)
        [record] = _records(tmp_path / "telemetry")
        assert record["attrs"]["path"] == str(tmp_path)


class TestWorkerResolution:
    def test_writer_default_then_contextvar_then_explicit(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "default"):
            telemetry.event("a")
            with telemetry.worker_scope("scoped"):
                telemetry.event("b")
                telemetry.event("c", worker="explicit")
        by_name = {r["name"]: r["worker"] for r in _records(tmp_path / "telemetry")}
        assert by_name == {"a": "default", "b": "scoped", "c": "explicit"}

    def test_worker_scope_restores_on_exit(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "default"):
            with telemetry.worker_scope("inner"):
                pass
            telemetry.event("after")
        [record] = _records(tmp_path / "telemetry")
        assert record["worker"] == "default"


class TestActivation:
    def test_scoped_restores_the_previous_state(self, tmp_path):
        assert not telemetry.enabled()
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            assert telemetry.enabled()
        assert not telemetry.enabled()
        telemetry.event("dropped")
        assert _records(tmp_path / "telemetry") == []

    def test_environment_activates_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, str(tmp_path / "telemetry"))
        telemetry.reset()
        telemetry.event("env.activated", n=1)
        assert telemetry.enabled()
        [record] = _records(tmp_path / "telemetry")
        assert record["name"] == "env.activated"
        # The stream name identifies the process.
        assert str(os.getpid()) in record["worker"]

    def test_enable_beats_the_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, str(tmp_path / "env"))
        telemetry.enable(tmp_path / "explicit", "w0")
        telemetry.event("routed")
        assert _records(tmp_path / "env") == []
        [record] = _records(tmp_path / "explicit")
        assert record["worker"] == "w0"

    def test_disable_stops_tracing_without_rereading_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, str(tmp_path / "telemetry"))
        telemetry.reset()
        assert telemetry.enabled()
        telemetry.disable()
        telemetry.event("dropped")
        assert not telemetry.enabled()
        assert _records(tmp_path / "telemetry") == []


class TestBestEffortWrites:
    def test_unwritable_stream_never_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        with telemetry.scoped(blocker / "telemetry", "w0"):
            telemetry.event("swallowed")
            with telemetry.span("worker.run"):
                pass


class TestReaders:
    def test_torn_tail_is_skipped(self, tmp_path):
        with telemetry.scoped(tmp_path / "telemetry", "w0") as writer:
            telemetry.event("kept")
            path = writer.path
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "kind": "event", "na')  # SIGKILL mid-line
        [record] = telemetry.read_telemetry_dir(tmp_path / "telemetry")
        assert record["name"] == "kept"

    def test_non_record_lines_are_skipped(self, tmp_path):
        path = tmp_path / "telemetry" / "w0.jsonl"
        path.parent.mkdir()
        path.write_text('[]\n\n{"no": "version"}\n', encoding="utf-8")
        assert telemetry.read_telemetry_dir(tmp_path / "telemetry") == []

    def test_newer_schema_is_a_hard_error(self, tmp_path):
        path = tmp_path / "w0.jsonl"
        newer = {"v": TELEMETRY_SCHEMA_VERSION + 1, "kind": "event", "name": "x"}
        path.write_text(json.dumps(newer) + "\n", encoding="utf-8")
        with pytest.raises(TelemetryError):
            list(telemetry.iter_telemetry_file(path))

    def test_missing_directory_reads_as_an_empty_fleet(self, tmp_path):
        assert telemetry.read_telemetry_dir(tmp_path / "absent") == []

    def test_directory_read_is_time_sorted_across_streams(self, tmp_path):
        directory = tmp_path / "telemetry"
        telemetry.TelemetryWriter(directory / "w1.jsonl", "w1").write_event(
            "second", at=20.0
        )
        telemetry.TelemetryWriter(directory / "w0.jsonl", "w0").write_event(
            "first", at=10.0
        )
        names = [r["name"] for r in telemetry.read_telemetry_dir(directory)]
        assert names == ["first", "second"]


class TestOutOfBand:
    def test_tracing_crosses_no_failpoints(self, tmp_path):
        """The observability layer must not perturb fault schedules: a
        counting plan sees zero crossings from span/event emission."""
        plan = FaultPlan(0)
        with telemetry.scoped(tmp_path / "telemetry", "w0"):
            with faults.injected_plan(plan):
                telemetry.event("lease.heartbeat", claim="c1")
                with telemetry.span("worker.run", run="r1"):
                    pass
        assert plan.invocations == {}
        assert len(_records(tmp_path / "telemetry")) == 2
