"""The chaos soak: byte-identity under seeded fault storms + worker kills.

These are the slowest tests in the suite (each soaks a real multi-worker
sweep through subprocess workers), so the sweep is small and the fault
schedules lean on *forced* faults — every soak is guaranteed at least one
injected worker crash on the store-append path plus rate-driven I/O faults,
and the adversary delivers one SIGKILL of its own.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import fleet_timeline
from repro.exceptions import OrchestrationError
from repro.experiments import SweepSpec, TargetSpec
from repro.faults import FaultPlan, ForcedFault, injected_plan
from repro.orchestrate import run_chaos

CHAOS_SWEEP = SweepSpec(
    protocols=("cont-v",),
    seeds=(3, 5),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 3, "n_sequences": 4},
)

#: Rate-driven I/O faults for the storm; modest, so the storm also finishes
#: work (the forced faults below guarantee the interesting crossings).
MIXED_RATES = {"io_error": 0.05, "torn_write": 0.03, "slow_io": 0.05}

#: Guaranteed faults per storm process: the first store append crashes the
#: worker (SIGKILL, heartbeat dies, claim goes stale) and the second
#: checkpoint save tears.
FORCED = [
    ForcedFault("store.append", 1, "crash_after_write"),
    ForcedFault("checkpoint.save", 2, "torn_write"),
]


class TestChaosSoak:
    @pytest.mark.parametrize("seed", [7, 11, 23])
    def test_soak_is_byte_identical_under_mixed_faults_and_kills(
        self, tmp_path, seed
    ):
        """Three distinct adversary seeds, each mixing I/O faults with
        worker deaths (one injected crash per process + one adversary
        SIGKILL), must all finalize byte-identical to the serial run —
        with telemetry on, pinning the tracing-is-out-of-band contract."""
        report = run_chaos(
            tmp_path / "soak", CHAOS_SWEEP, seed=seed, workers=2, kills=1,
            rates=MIXED_RATES, force=FORCED, lease_seconds=1.0, trace=True,
        )
        assert report.identical
        assert report.kills_delivered == 1
        assert report.injected_by_kind.get("crash_after_write", 0) >= 1
        assert report.injected_by_site.get("store.append", 0) >= 1
        # The traced soak leaves a reconstructible fleet timeline: the
        # adversary logged its kill, and fired faults rode the streams.
        fleet = fleet_timeline(tmp_path / "soak" / "telemetry")
        adversary = fleet.worker_timeline("chaos-adversary")
        assert adversary is not None
        assert adversary.count_events("chaos.kill") == 1
        assert sum(w.count_events("fault") for w in fleet.workers) >= 1
        assert fleet.n_run_spans >= 1
        # At least one worker died by SIGKILL (the forced append crash or
        # the adversary); others may have exited cleanly when the storm
        # drained.
        assert report.worker_exits
        assert any(code == -9 for code in report.worker_exits.values())
        assert report.finalized_path.exists()
        assert report.reference_path.exists()

    def test_report_accounts_for_the_storm_residue(self, tmp_path):
        report = run_chaos(
            tmp_path / "soak", CHAOS_SWEEP, seed=7, workers=2, kills=1,
            rates=MIXED_RATES, force=FORCED, lease_seconds=1.0,
        )
        run_ids = {entry.run_id for entry in _expected_runs()}
        assert set(report.drained) <= run_ids
        assert set(report.failed_in_storm) <= run_ids
        assert set(report.failed_in_storm.values()) <= {
            "error", "poison", "timeout", "unknown"
        }
        assert report.n_runs == len(run_ids)
        assert report.workers_spawned >= report.workers

    def test_guards_reject_unsurvivable_configurations(self, tmp_path):
        with pytest.raises(OrchestrationError, match="max_attempts"):
            run_chaos(
                tmp_path / "soak", CHAOS_SWEEP, seed=0, max_attempts=1
            )
        with pytest.raises(OrchestrationError, match="fault plan is active"):
            with injected_plan(FaultPlan(0)):
                run_chaos(tmp_path / "soak2", CHAOS_SWEEP, seed=0)


class TestChaosCli:
    def test_cli_soak_smoke(self, tmp_path):
        """``python -m repro.orchestrate chaos`` end to end: flag parsing,
        forced-fault syntax, summary line, exit 0 on byte-identity."""
        src = str(Path(repro.__file__).resolve().parent.parent)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.orchestrate", "chaos",
                "--queue", str(tmp_path / "queue"),
                "--protocols", "cont-v", "--seeds", "3",
                "--cycles", "2", "--sequences", "4",
                "--chaos-seed", "5", "--workers", "1", "--kills", "0",
                "--rate", "io_error=0.05",
                "--force", "store.append:1:io_error",
                "--lease", "1",
            ],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "byte-identical" in proc.stdout
        assert "io_error" in proc.stdout


def _expected_runs():
    return CHAOS_SWEEP.expand()
