"""CLI coverage: ``python -m repro.orchestrate`` init / worker / status / finalize."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.orchestrate.cli import main as orchestrate_main
from repro.store import RunStore
from repro.store.cli import main as store_main

SWEEP_ARGS = [
    "--protocols", "im-rp", "cont-v",
    "--seeds", "3",
    "--cycles", "1",
    "--sequences", "4",
    "--target-seed", "11",
]


def _init(queue_dir):
    return orchestrate_main(["init", "--queue", str(queue_dir)] + SWEEP_ARGS)


class TestOrchestrateCli:
    def test_full_session(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        assert _init(queue_dir) == 0
        assert "Initialised queue" in capsys.readouterr().out

        assert (
            orchestrate_main(
                ["worker", "--queue", str(queue_dir), "--worker-id", "w0", "--no-wait"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "claimed: im-rp-s3" in out
        assert "Worker w0: executed 2 run(s)" in out

        assert orchestrate_main(["status", "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "2/2 runs done (100%)" in out
        assert "w0" in out

        output = tmp_path / "final.jsonl"
        assert (
            orchestrate_main(
                ["finalize", "--queue", str(queue_dir), "--output", str(output)]
            )
            == 0
        )
        assert "Finalized queue" in capsys.readouterr().out
        assert len(RunStore(output)) == 2
        # The canonical store feeds the protocol matrix straight from disk.
        assert store_main(["report", str(output)]) == 0
        report = capsys.readouterr().out
        assert "im-rp" in report and "cont-v" in report

    def test_worker_max_runs_and_partial_finalize(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        assert (
            orchestrate_main(
                [
                    "worker", "--queue", str(queue_dir),
                    "--worker-id", "w0", "--max-runs", "1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        output = tmp_path / "partial.jsonl"
        code = orchestrate_main(
            ["finalize", "--queue", str(queue_dir), "--output", str(output)]
        )
        assert code == 2
        assert "not drained" in capsys.readouterr().err
        assert (
            orchestrate_main(
                [
                    "finalize", "--queue", str(queue_dir),
                    "--output", str(output), "--partial",
                ]
            )
            == 0
        )
        assert len(RunStore(output)) == 1

    def test_status_of_uninitialised_queue_is_a_clean_error(self, tmp_path, capsys):
        assert orchestrate_main(["status", "--queue", str(tmp_path / "nope")]) == 2
        assert "not an initialised" in capsys.readouterr().err

    def test_init_rejects_bad_sweep_flags(self, tmp_path, capsys):
        code = orchestrate_main(
            ["init", "--queue", str(tmp_path / "q"), "--protocols", "warp-drive"]
        )
        assert code == 2
        assert "unknown protocols" in capsys.readouterr().err


class TestWorkerRetryFlags:
    def test_max_attempts_rejects_non_positive(self, tmp_path, capsys):
        import pytest

        with pytest.raises(SystemExit):
            orchestrate_main(
                ["worker", "--queue", str(tmp_path / "q"), "--max-attempts", "0"]
            )

    def test_max_attempts_accepted(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        capsys.readouterr()
        assert (
            orchestrate_main(
                [
                    "worker", "--queue", str(queue_dir),
                    "--worker-id", "w0", "--no-wait", "--max-attempts", "3",
                ]
            )
            == 0
        )
        assert "executed 2 run(s)" in capsys.readouterr().out


class TestTelemetryCli:
    """worker --telemetry, the report subcommand, and status --watch."""

    @pytest.fixture(autouse=True)
    def _untraced(self, monkeypatch):
        monkeypatch.delenv(telemetry.TELEMETRY_ENV, raising=False)
        telemetry.reset()
        yield
        telemetry.reset()

    def test_traced_session_status_and_report(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        assert (
            orchestrate_main(
                [
                    "worker", "--queue", str(queue_dir),
                    "--worker-id", "w0", "--no-wait", "--telemetry",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (queue_dir / "telemetry" / "w0.jsonl").exists()

        # status grows the fleet section once the telemetry directory exists.
        assert orchestrate_main(["status", "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "Sweep progress: 2/2" in out
        assert "Fleet telemetry:" in out

        assert (
            orchestrate_main(
                ["report", "--queue", str(queue_dir), "--bins", "10"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fleet telemetry: 1 worker(s), 2 run span(s)" in out
        assert "critical run:" in out
        assert "w0" in out

    def test_report_of_untraced_queue_is_a_clean_error(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        capsys.readouterr()
        assert orchestrate_main(["report", "--queue", str(queue_dir)]) == 2
        assert "--telemetry" in capsys.readouterr().err

    def test_watch_exits_once_the_queue_drains(self, tmp_path, capsys):
        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        orchestrate_main(
            ["worker", "--queue", str(queue_dir), "--worker-id", "w0", "--no-wait"]
        )
        capsys.readouterr()
        assert (
            orchestrate_main(
                [
                    "status", "--queue", str(queue_dir),
                    "--watch", "--interval", "0.01",
                ]
            )
            == 0
        )
        assert "2/2 runs done" in capsys.readouterr().out

    def test_watch_piped_prints_plain_snapshots(self, tmp_path, capsys):
        """Redirected --watch (CI logs, `| tee`) must not emit ANSI codes."""
        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        orchestrate_main(
            ["worker", "--queue", str(queue_dir), "--worker-id", "w0", "--no-wait"]
        )
        capsys.readouterr()
        assert (
            orchestrate_main(
                [
                    "status", "--queue", str(queue_dir),
                    "--watch", "--interval", "0.01",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # capsys stdout is not a TTY, so the fallback path is in force.
        assert "\x1b[" not in out
        assert "2/2 runs done" in out

    def test_watch_on_a_tty_clears_between_frames(self, tmp_path, capsys, monkeypatch):
        import sys as _sys

        queue_dir = tmp_path / "queue"
        _init(queue_dir)
        orchestrate_main(
            ["worker", "--queue", str(queue_dir), "--worker-id", "w0", "--no-wait"]
        )
        capsys.readouterr()
        monkeypatch.setattr(_sys.stdout, "isatty", lambda: True, raising=False)
        assert (
            orchestrate_main(
                [
                    "status", "--queue", str(queue_dir),
                    "--watch", "--interval", "0.01",
                ]
            )
            == 0
        )
        assert "\x1b[2J\x1b[H" in capsys.readouterr().out

    def test_scale_session(self, tmp_path, capsys):
        base = tmp_path / "scale"
        assert (
            orchestrate_main(
                [
                    "scale", "--queue", str(base),
                    "--protocols", "im-rp",
                    "--seeds", "3",
                    "--cycles", "1",
                    "--sequences", "4",
                    "--target-seed", "11",
                    "--workers", "1,2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Scaling study: 2 fleet size(s)" in out
        assert "byte-identical across 2 fleet size(s)" in out
        assert (base / "scaling.json").is_file()
        assert (base / "scale-w1" / "finalized.jsonl").is_file()
        assert (base / "scale-w2" / "telemetry").is_dir()

    def test_scale_rejects_bad_worker_lists(self, tmp_path, capsys):
        for bad in ("zero", "0,1", ""):
            assert (
                orchestrate_main(
                    ["scale", "--queue", str(tmp_path / "q"), "--workers", bad]
                )
                == 2
            )
            assert "--workers" in capsys.readouterr().err
