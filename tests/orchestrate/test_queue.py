"""Queue and lease primitives: atomic claims, expiry, stealing, torn files."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exceptions import OrchestrationError
from repro.orchestrate import (
    WorkQueue,
    read_lease,
    release_claim,
    try_claim,
    try_steal,
    validate_worker_id,
)
from repro.orchestrate.lease import Heartbeat, refresh_lease
from repro.experiments import SweepSpec, TargetSpec
from repro.store import run_fingerprint

SWEEP = SweepSpec(
    protocols=("im-rp", "cont-v"),
    seeds=(3, 5),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 1, "n_sequences": 4},
)


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue.create(tmp_path / "queue", SWEEP)


class TestManifest:
    def test_entries_round_trip_the_expanded_sweep(self, queue):
        entries = queue.entries()
        expanded = SWEEP.expand()
        assert [entry.spec for entry in entries] == expanded
        assert [entry.fingerprint for entry in entries] == [
            run_fingerprint(spec) for spec in expanded
        ]

    def test_reinit_same_sweep_is_idempotent(self, queue):
        again = WorkQueue.create(queue.path, SWEEP)
        assert [e.fingerprint for e in again.entries()] == [
            e.fingerprint for e in queue.entries()
        ]

    def test_reinit_different_sweep_is_rejected(self, queue):
        other = SweepSpec(
            protocols=("im-rp",),
            seeds=(0,),
            targets=TargetSpec(kind="named-pdz", seed=11),
            base={"n_cycles": 1, "n_sequences": 4},
        )
        with pytest.raises(OrchestrationError, match="different sweep"):
            WorkQueue.create(queue.path, other)

    def test_uninitialised_directory_is_a_clear_error(self, tmp_path):
        with pytest.raises(OrchestrationError, match="not an initialised"):
            WorkQueue(tmp_path / "nowhere").entries()

    def test_unknown_manifest_version_rejected(self, queue):
        payload = json.loads(queue.manifest_path.read_text())
        payload["schema_version"] = 99
        queue.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(OrchestrationError, match="schema_version"):
            queue.entries()

    def test_worker_id_validation(self):
        assert validate_worker_id("node-3.local_w0") == "node-3.local_w0"
        with pytest.raises(OrchestrationError, match="worker id"):
            validate_worker_id("bad/worker")
        with pytest.raises(OrchestrationError, match="worker id"):
            validate_worker_id("")


class TestClaims:
    def test_first_claim_wins_and_double_claim_is_rejected(self, queue):
        fingerprint = queue.entries()[0].fingerprint
        path = queue.claim_path(fingerprint)
        assert try_claim(path, "w0") is True
        # The atomic O_EXCL create rejects every later contender.
        assert try_claim(path, "w1") is False
        lease = read_lease(path)
        assert lease is not None and lease.worker == "w0" and not lease.torn

    def test_live_lease_cannot_be_stolen(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        assert try_steal(path, "w1", lease_seconds=60.0) is False
        assert read_lease(path).worker == "w0"

    def test_expired_lease_is_stolen(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        time.sleep(0.05)
        assert try_steal(path, "w1", lease_seconds=0.01) is True
        assert read_lease(path).worker == "w1"

    def test_released_claim_is_reclaimable(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        release_claim(path)
        assert read_lease(path) is None
        assert try_claim(path, "w1") is True
        release_claim(path)
        release_claim(path)  # idempotent

    def test_steal_of_vanished_claim_falls_back_to_claim(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        assert try_steal(path, "w1", lease_seconds=0.01) is True
        assert read_lease(path).worker == "w1"

    def test_heartbeat_keeps_a_lease_alive(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        with Heartbeat(path, "w0", lease_seconds=0.4):
            time.sleep(1.0)
            # Several lease periods passed, but the heartbeat kept it fresh.
            assert try_steal(path, "w1", lease_seconds=0.4) is False
        assert read_lease(path).worker == "w0"

    def test_refresh_extends_the_lease(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        before = read_lease(path)
        time.sleep(0.05)
        refresh_lease(path, "w0", before.claimed_at)
        after = read_lease(path)
        assert after.heartbeat_at > before.heartbeat_at
        assert after.claimed_at == pytest.approx(before.claimed_at)


class TestTornFiles:
    def test_torn_claim_is_not_trusted_but_still_gates(self, queue):
        """Garbage claim content degrades to an mtime lease, not a crash."""
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"worker": "w0", "claimed_')  # torn mid-write
        lease = read_lease(path)
        assert lease is not None and lease.torn
        # Fresh mtime: still within its lease, cannot be stolen.
        assert try_steal(path, "w1", lease_seconds=60.0) is False

    def test_stale_torn_claim_is_reclaimed(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        stale = time.time() - 3600.0
        os.utime(path, (stale, stale))
        assert try_steal(path, "w1", lease_seconds=30.0) is True
        assert read_lease(path).worker == "w1"

    def test_empty_claim_file_handled(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()
        lease = read_lease(path)
        assert lease is not None and lease.torn


class TestDoneMarkers:
    def test_mark_done_round_trips(self, queue):
        entry = queue.entries()[0]
        assert not queue.is_done(entry.fingerprint)
        queue.mark_done(
            entry.fingerprint,
            worker_id="w0",
            run_id=entry.spec.run_id,
            wall_seconds=1.25,
        )
        assert queue.is_done(entry.fingerprint)
        record = queue.done_record(entry.fingerprint)
        assert record["worker"] == "w0"
        assert record["run_id"] == entry.spec.run_id
        assert record["wall_seconds"] == 1.25
        assert queue.done_fingerprints() == [entry.fingerprint]
