"""Queue and lease primitives: atomic claims, expiry, stealing, torn files."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exceptions import OrchestrationError
from repro.orchestrate import (
    WorkQueue,
    read_lease,
    release_claim,
    try_claim,
    try_steal,
    validate_worker_id,
)
from repro.orchestrate.lease import Heartbeat, refresh_lease
from repro.orchestrate.queue import atomic_write_json
from repro.experiments import SweepSpec, TargetSpec
from repro.store import run_fingerprint

SWEEP = SweepSpec(
    protocols=("im-rp", "cont-v"),
    seeds=(3, 5),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 1, "n_sequences": 4},
)


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue.create(tmp_path / "queue", SWEEP)


class TestManifest:
    def test_entries_round_trip_the_expanded_sweep(self, queue):
        entries = queue.entries()
        expanded = SWEEP.expand()
        assert [entry.spec for entry in entries] == expanded
        assert [entry.fingerprint for entry in entries] == [
            run_fingerprint(spec) for spec in expanded
        ]

    def test_reinit_same_sweep_is_idempotent(self, queue):
        again = WorkQueue.create(queue.path, SWEEP)
        assert [e.fingerprint for e in again.entries()] == [
            e.fingerprint for e in queue.entries()
        ]

    def test_reinit_different_sweep_is_rejected(self, queue):
        other = SweepSpec(
            protocols=("im-rp",),
            seeds=(0,),
            targets=TargetSpec(kind="named-pdz", seed=11),
            base={"n_cycles": 1, "n_sequences": 4},
        )
        with pytest.raises(OrchestrationError, match="different sweep"):
            WorkQueue.create(queue.path, other)

    def test_uninitialised_directory_is_a_clear_error(self, tmp_path):
        with pytest.raises(OrchestrationError, match="not an initialised"):
            WorkQueue(tmp_path / "nowhere").entries()

    def test_unknown_manifest_version_rejected(self, queue):
        payload = json.loads(queue.manifest_path.read_text())
        payload["schema_version"] = 99
        queue.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(OrchestrationError, match="schema_version"):
            queue.entries()

    def test_worker_id_validation(self):
        assert validate_worker_id("node-3.local_w0") == "node-3.local_w0"
        with pytest.raises(OrchestrationError, match="worker id"):
            validate_worker_id("bad/worker")
        with pytest.raises(OrchestrationError, match="worker id"):
            validate_worker_id("")


class TestClaims:
    def test_first_claim_wins_and_double_claim_is_rejected(self, queue):
        fingerprint = queue.entries()[0].fingerprint
        path = queue.claim_path(fingerprint)
        assert try_claim(path, "w0") is True
        # The atomic O_EXCL create rejects every later contender.
        assert try_claim(path, "w1") is False
        lease = read_lease(path)
        assert lease is not None and lease.worker == "w0" and not lease.torn

    def test_live_lease_cannot_be_stolen(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        assert try_steal(path, "w1", lease_seconds=60.0) is False
        assert read_lease(path).worker == "w0"

    def test_expired_lease_is_stolen(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        time.sleep(0.05)
        assert try_steal(path, "w1", lease_seconds=0.01) is True
        assert read_lease(path).worker == "w1"

    def test_released_claim_is_reclaimable(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        release_claim(path)
        assert read_lease(path) is None
        assert try_claim(path, "w1") is True
        release_claim(path)
        release_claim(path)  # idempotent

    def test_steal_of_vanished_claim_falls_back_to_claim(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        assert try_steal(path, "w1", lease_seconds=0.01) is True
        assert read_lease(path).worker == "w1"

    def test_heartbeat_keeps_a_lease_alive(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        with Heartbeat(path, "w0", lease_seconds=0.4):
            time.sleep(1.0)
            # Several lease periods passed, but the heartbeat kept it fresh.
            assert try_steal(path, "w1", lease_seconds=0.4) is False
        assert read_lease(path).worker == "w0"

    def test_refresh_extends_the_lease(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        before = read_lease(path)
        time.sleep(0.05)
        refresh_lease(path, "w0", before.claimed_at)
        after = read_lease(path)
        assert after.heartbeat_at > before.heartbeat_at
        assert after.claimed_at == pytest.approx(before.claimed_at)


class TestTornFiles:
    def test_torn_claim_is_not_trusted_but_still_gates(self, queue):
        """Garbage claim content degrades to an mtime lease, not a crash."""
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"worker": "w0", "claimed_')  # torn mid-write
        lease = read_lease(path)
        assert lease is not None and lease.torn
        # Fresh mtime: still within its lease, cannot be stolen.
        assert try_steal(path, "w1", lease_seconds=60.0) is False

    def test_stale_torn_claim_is_reclaimed(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        stale = time.time() - 3600.0
        os.utime(path, (stale, stale))
        assert try_steal(path, "w1", lease_seconds=30.0) is True
        assert read_lease(path).worker == "w1"

    def test_empty_claim_file_handled(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()
        lease = read_lease(path)
        assert lease is not None and lease.torn


class TestDoneMarkers:
    def test_mark_done_round_trips(self, queue):
        entry = queue.entries()[0]
        assert not queue.is_done(entry.fingerprint)
        queue.mark_done(
            entry.fingerprint,
            worker_id="w0",
            run_id=entry.spec.run_id,
            wall_seconds=1.25,
        )
        assert queue.is_done(entry.fingerprint)
        record = queue.done_record(entry.fingerprint)
        assert record["worker"] == "w0"
        assert record["run_id"] == entry.spec.run_id
        assert record["wall_seconds"] == 1.25
        assert queue.done_fingerprints() == [entry.fingerprint]


class TestOwnerCheckedRelease:
    """release_claim returns whether *this* process won the release, and
    declines to destroy a claim a stealer now owns."""

    def test_owner_release_wins(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        assert release_claim(path, "w0") is True
        assert read_lease(path) is None

    def test_release_declines_a_stolen_claim(self, queue):
        """Our heartbeat stalled, a peer stole the lease: unlinking now
        would destroy *their* live claim."""
        path = queue.claim_path(queue.entries()[0].fingerprint)
        stale = time.time() - 3600.0
        atomic_write_json(
            path,
            {"worker": "w0", "claimed_at": stale, "heartbeat_at": stale},
        )
        assert try_steal(path, "thief", lease_seconds=30.0) is True
        assert release_claim(path, "w0") is False
        assert read_lease(path).worker == "thief"

    def test_release_of_vanished_claim_is_a_lost_race(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        assert release_claim(path, "w0") is False
        try_claim(path, "w0")
        release_claim(path)
        assert release_claim(path, "w0") is False

    def test_unowned_release_keeps_the_old_contract(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        assert release_claim(path) is True

    def test_torn_claim_is_releasable_by_anyone(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"worker": "w9", "cl')  # torn: owner unknowable
        assert release_claim(path, "w0") is True
        assert read_lease(path) is None


class TestGarbageClaimFiles:
    """read_lease must degrade every unreadable shape to an mtime lease —
    never crash, never trust garbage beyond its timestamp."""

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all",
            '["a", "json", "list"]',
            '"just a string"',
            "42",
            '{"worker": "w0"}',  # structurally incomplete
            '{"worker": "w0", "claimed_at": "yesterday", "heartbeat_at": 1}',
        ],
    )
    def test_garbage_degrades_to_a_torn_mtime_lease(self, queue, content):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        lease = read_lease(path)
        assert lease is not None and lease.torn
        assert lease.worker == "<unreadable>"
        assert lease.attempt == 1 and lease.crashes == 0
        # Fresh mtime: not stealable yet; stale mtime: stealable.
        assert not lease.expired(lease_seconds=60.0)

    def test_crash_counter_rides_the_claim_and_steals_increment_it(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        assert try_claim(path, "w0", attempt=2, crashes=1) is True
        lease = read_lease(path)
        assert lease.attempt == 2 and lease.crashes == 1
        stale = time.time() - 3600.0
        atomic_write_json(
            path,
            {
                "worker": "w0", "claimed_at": stale, "heartbeat_at": stale,
                "attempt": 2, "crashes": 1,
            },
        )
        assert try_steal(path, "w1", lease_seconds=30.0) is True
        stolen = read_lease(path)
        # The steal inherits the attempt but records one more dead
        # incarnation.
        assert stolen.attempt == 2 and stolen.crashes == 2

    def test_pre_crash_schema_claims_read_as_zero_crashes(self, queue):
        path = queue.claim_path(queue.entries()[0].fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"worker": "w0", "claimed_at": 1.0, "heartbeat_at": 1.0}
            )
        )
        lease = read_lease(path)
        assert not lease.torn and lease.crashes == 0 and lease.attempt == 1


class TestFailedMarkers:
    def test_mark_failed_round_trips_with_reason(self, queue):
        entry = queue.entries()[0]
        assert not queue.is_failed(entry.fingerprint)
        queue.mark_failed(
            entry.fingerprint,
            worker_id="w0",
            run_id=entry.spec.run_id,
            error="RuntimeError: boom",
            attempts=3,
            reason="poison",
        )
        assert queue.is_failed(entry.fingerprint)
        record = queue.failed_record(entry.fingerprint)
        assert record["worker"] == "w0"
        assert record["run_id"] == entry.spec.run_id
        assert record["error"] == "RuntimeError: boom"
        assert record["attempts"] == 3
        assert record["reason"] == "poison"
        assert record["failed_at"] <= time.time()

    def test_reason_defaults_to_error(self, queue):
        entry = queue.entries()[0]
        queue.mark_failed(
            entry.fingerprint, worker_id="w0", run_id=entry.spec.run_id,
            error="x", attempts=1,
        )
        assert queue.failed_record(entry.fingerprint)["reason"] == "error"

    def test_failed_fingerprints_lists_only_real_markers(self, queue):
        entries = queue.entries()
        for entry in entries[:2]:
            queue.mark_failed(
                entry.fingerprint, worker_id="w0", run_id=entry.spec.run_id,
                error="x", attempts=1,
            )
        # A stranded atomic-write temp must not read as a failed run.
        (queue.failed_dir / ".ghost.json.tmp-1-2").write_text("{}")
        assert queue.failed_fingerprints() == sorted(
            entry.fingerprint for entry in entries[:2]
        )

    def test_missing_and_torn_failed_records_read_as_none(self, queue):
        entry = queue.entries()[0]
        assert queue.failed_record(entry.fingerprint) is None
        queue.failed_dir.mkdir(parents=True, exist_ok=True)
        queue.failed_path(entry.fingerprint).write_text('{"torn')
        assert queue.failed_record(entry.fingerprint) is None


class TestHeartbeatFailureSurfacing:
    """A heartbeat that cannot keep its lease fresh must fail loudly, not
    let the claim rot stale under a live worker."""

    def _refusing_plan(self):
        from repro.faults import FaultPlan

        return FaultPlan(0, rates={"io_error": 1.0})

    def test_exhausted_refreshes_surface_at_exit(self, queue):
        from repro import faults
        from repro.orchestrate import HeartbeatError
        from repro.utils.retrying import RetryPolicy

        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        policy = RetryPolicy(attempts=2, base_delay=0.001, jitter=0.0)
        with faults.injected_plan(self._refusing_plan()):
            with pytest.raises(HeartbeatError, match="stopped"):
                with Heartbeat(
                    path, "w0", lease_seconds=0.2, retry_policy=policy
                ) as heartbeat:
                    deadline = time.time() + 5.0
                    while not heartbeat.failed and time.time() < deadline:
                        time.sleep(0.02)
                    assert heartbeat.failed

    def test_check_raises_before_exit(self, queue):
        from repro import faults
        from repro.orchestrate import HeartbeatError
        from repro.utils.retrying import RetryPolicy

        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        policy = RetryPolicy(attempts=2, base_delay=0.001, jitter=0.0)
        with faults.injected_plan(self._refusing_plan()):
            heartbeat = Heartbeat(
                path, "w0", lease_seconds=0.2, retry_policy=policy
            )
            heartbeat.__enter__()
            try:
                deadline = time.time() + 5.0
                while not heartbeat.failed and time.time() < deadline:
                    time.sleep(0.02)
                with pytest.raises(HeartbeatError, match="w0"):
                    heartbeat.check()
            finally:
                with pytest.raises(HeartbeatError):
                    heartbeat.__exit__(None, None, None)

    def test_transient_refresh_failures_are_absorbed(self, queue):
        """A refresh that fails once then heals never surfaces: the retry
        policy absorbs the transient class in place."""
        from repro import faults
        from repro.faults import FaultPlan, ForcedFault

        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        plan = FaultPlan(
            0, force=[ForcedFault("lease.refresh", 1, "io_error")]
        )
        with faults.injected_plan(plan):
            with Heartbeat(path, "w0", lease_seconds=0.2) as heartbeat:
                time.sleep(0.5)  # several beats, the first one injected
                assert not heartbeat.failed
        assert read_lease(path).worker == "w0"

    def test_run_body_exception_is_not_masked_by_a_dead_heartbeat(self, queue):
        from repro import faults
        from repro.utils.retrying import RetryPolicy

        path = queue.claim_path(queue.entries()[0].fingerprint)
        try_claim(path, "w0")
        policy = RetryPolicy(attempts=2, base_delay=0.001, jitter=0.0)
        with faults.injected_plan(self._refusing_plan()):
            with pytest.raises(RuntimeError, match="the real failure"):
                with Heartbeat(
                    path, "w0", lease_seconds=0.2, retry_policy=policy
                ):
                    time.sleep(0.3)
                    raise RuntimeError("the real failure")
