"""The scaling-study harness: repeated fleets, byte-compared and reduced."""

from __future__ import annotations

import time

import pytest

from repro import telemetry
from repro.exceptions import OrchestrationError
from repro.experiments import SweepSpec, TargetSpec
from repro.experiments.suite import execute_run
from repro.orchestrate.scaling import run_scaling_study
from repro.telemetry import read_metrics

SWEEP = SweepSpec(
    protocols=("im-rp", "cont-v"),
    seeds=(3,),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 1, "n_sequences": 4},
)


@pytest.fixture(autouse=True)
def _untraced(monkeypatch):
    monkeypatch.delenv(telemetry.TELEMETRY_ENV, raising=False)
    telemetry.reset()
    yield
    telemetry.reset()


class TestRunScalingStudy:
    def test_measures_each_fleet_size(self, tmp_path):
        study, runs = run_scaling_study(tmp_path, SWEEP, [1, 2])
        assert [point.n_workers for point in study.points] == [1, 2]
        assert all(point.wall_seconds > 0.0 for point in study.points)
        assert all(point.n_run_spans == 2 for point in study.points)
        for run in runs:
            assert run.finalized_path.is_file()
            assert run.telemetry_dir.is_dir()
        # Every size finalized the same science bytes (enforced in the
        # harness; re-checked here from the artifacts).
        payloads = {run.finalized_path.read_bytes() for run in runs}
        assert len(payloads) == 1
        # The metric stream of each size carries the science axis.
        series = read_metrics(runs[1].telemetry_dir)
        assert series["campaign.cycles"].count >= 2
        assert "worker.rss_bytes" in series

    def test_bad_fleet_size_lists_are_rejected(self, tmp_path):
        with pytest.raises(OrchestrationError):
            run_scaling_study(tmp_path, SWEEP, [])
        with pytest.raises(OrchestrationError):
            run_scaling_study(tmp_path, SWEEP, [0, 1])
        with pytest.raises(OrchestrationError):
            run_scaling_study(tmp_path, SWEEP, [2, 2])

    def test_injectable_execute_measures_harness_scaling(self, tmp_path):
        """A sleep-based executor (GIL released) shows real parallel speedup
        even on a single-core host — the benchmark's acceptance lever."""

        def sleepy(spec, resume_state=None, on_cycle=None):
            result, seconds = execute_run(
                spec, resume_state=resume_state, on_cycle=on_cycle
            )
            time.sleep(0.05)
            return result, seconds

        study, _ = run_scaling_study(tmp_path, SWEEP, [1, 2], execute=sleepy)
        assert study.speedup(study.point(2)) > 1.0
