"""Worker-loop behaviour: draining, stealing, healing, failure modes, and the
distributed determinism contract (2-worker finalize == serial suite store)."""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import OrchestrationError
from repro.experiments import CampaignSuite, SweepSpec, TargetSpec
from repro.experiments.suite import SuiteRunRecord, execute_run
from repro.orchestrate import (
    WorkQueue,
    finalize_queue,
    queue_progress,
    read_lease,
    run_worker,
    try_claim,
)
from repro.orchestrate.queue import atomic_write_json
from repro.store import RunStore, prune_store

SWEEP = SweepSpec(
    protocols=("im-rp", "cont-v"),
    seeds=(3, 5),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 1, "n_sequences": 4},
)


class FakeResult:
    """Deterministic stand-in for a CampaignResult (mechanics tests only)."""

    def __init__(self, spec):
        self._payload = {
            "approach": "FAKE",
            "protocol": spec.protocol,
            "seed": spec.seed,
            "run_id": spec.run_id,
        }

    def as_dict(self):
        return self._payload


def fake_execute(calls=None):
    def execute(spec):
        if calls is not None:
            calls.append(spec.run_id)
        return FakeResult(spec), 0.01

    return execute


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue.create(tmp_path / "queue", SWEEP)


def _dead_claim(queue, fingerprint, *, worker="dead-worker", age=3600.0):
    """A claim whose owner stopped heartbeating ``age`` seconds ago."""
    stale = time.time() - age
    atomic_write_json(
        queue.claim_path(fingerprint),
        {"worker": worker, "claimed_at": stale, "heartbeat_at": stale},
    )


class TestWorkerLoop:
    def test_single_worker_drains_the_queue(self, queue):
        calls = []
        outcome = run_worker(queue, worker_id="w0", execute=fake_execute(calls))
        run_ids = [entry.spec.run_id for entry in queue.entries()]
        assert outcome.executed == run_ids == calls
        assert outcome.stolen == [] and outcome.healed == []
        store = RunStore(queue.worker_store_path("w0"))
        assert sorted(store.fingerprints()) == sorted(
            entry.fingerprint for entry in queue.entries()
        )
        assert all(queue.is_done(e.fingerprint) for e in queue.entries())

    def test_two_workers_split_without_overlap(self, queue):
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    run_worker,
                    queue,
                    worker_id=f"w{i}",
                    execute=fake_execute(),
                    lease_seconds=60.0,
                )
                for i in range(2)
            ]
            outcomes = [future.result() for future in futures]
        executed = outcomes[0].executed + outcomes[1].executed
        # O_EXCL claims + live leases: every run executed exactly once.
        assert sorted(executed) == sorted(
            entry.spec.run_id for entry in queue.entries()
        )

    def test_max_runs_stops_early(self, queue):
        outcome = run_worker(
            queue, worker_id="w0", execute=fake_execute(), max_runs=1
        )
        assert outcome.n_executed == 1
        progress = queue_progress(queue)
        assert progress.n_done == 1 and progress.n_unclaimed == 3

    def test_no_wait_returns_while_peers_hold_claims(self, queue):
        entries = queue.entries()
        for entry in entries[1:]:
            try_claim(queue.claim_path(entry.fingerprint), "live-peer")
        outcome = run_worker(
            queue, worker_id="w0", execute=fake_execute(), wait=False,
            lease_seconds=60.0,
        )
        # Only the unclaimed run was executable; the rest are held live.
        assert outcome.executed == [entries[0].spec.run_id]

    def test_worker_store_path_override(self, queue, tmp_path):
        store_path = tmp_path / "elsewhere" / "mine.jsonl"
        run_worker(
            queue, worker_id="w0", store_path=store_path, execute=fake_execute()
        )
        assert len(RunStore(store_path)) == 4
        assert queue.worker_store_paths() == []


class TestFailureModes:
    def test_stale_lease_is_reclaimed_by_a_live_worker(self, queue):
        """A worker died mid-run: its claim expires and a peer steals it."""
        victim = queue.entries()[0]
        _dead_claim(queue, victim.fingerprint)
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5
        )
        assert victim.spec.run_id in outcome.stolen
        assert outcome.n_executed == 4  # nothing lost
        assert all(queue.is_done(e.fingerprint) for e in queue.entries())
        assert read_lease(queue.claim_path(victim.fingerprint)).worker == "w1"

    def test_live_lease_is_respected_until_expiry(self, queue):
        victim = queue.entries()[0]
        _dead_claim(queue, victim.fingerprint, age=0.0)  # fresh heartbeat
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=60.0,
            wait=False,
        )
        assert victim.spec.run_id not in outcome.executed
        assert outcome.n_executed == 3

    def test_torn_claim_file_is_ignored_and_reclaimed_when_stale(self, queue):
        victim = queue.entries()[0]
        claim = queue.claim_path(victim.fingerprint)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.write_text('{"worker": "w9", "claim')  # torn mid-write
        import os

        stale = time.time() - 3600.0
        os.utime(claim, (stale, stale))
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5
        )
        assert victim.spec.run_id in outcome.stolen
        assert outcome.n_executed == 4

    def test_heal_republishes_marker_without_reexecution(self, queue):
        """Crash between store append and done marker: healed, not re-run."""
        entry = queue.entries()[0]
        store = RunStore(queue.worker_store_path("w0"))
        store.append(
            SuiteRunRecord(
                spec=entry.spec, result=FakeResult(entry.spec), wall_seconds=0.5
            ),
            fingerprint=entry.fingerprint,
        )
        assert not queue.is_done(entry.fingerprint)
        calls = []
        outcome = run_worker(queue, worker_id="w0", execute=fake_execute(calls))
        assert outcome.healed == [entry.fingerprint]
        assert entry.spec.run_id not in calls  # not re-executed
        assert queue.is_done(entry.fingerprint)
        assert queue.done_record(entry.fingerprint)["wall_seconds"] == 0.5

    def test_failing_run_releases_the_claim_and_fails_fast(self, queue):
        def exploding(spec):
            raise RuntimeError("boom")

        with pytest.raises(OrchestrationError, match="boom"):
            run_worker(queue, worker_id="w0", execute=exploding)
        first = queue.entries()[0]
        # Claim released: a healthy peer retries immediately, nothing is lost.
        assert read_lease(queue.claim_path(first.fingerprint)) is None
        outcome = run_worker(queue, worker_id="w1", execute=fake_execute())
        assert outcome.n_executed == 4

    def test_double_execution_after_steal_merges_cleanly(self, queue, tmp_path):
        """Both the 'dead' and the stealing worker finished: dedup by
        fingerprint works because seeded results are deterministic."""
        entry = queue.entries()[0]
        # The dead worker got as far as appending to its store.
        dead_store = RunStore(queue.worker_store_path("dead"))
        dead_store.append(
            SuiteRunRecord(
                spec=entry.spec, result=FakeResult(entry.spec), wall_seconds=9.9
            ),
            fingerprint=entry.fingerprint,
        )
        _dead_claim(queue, entry.fingerprint)
        run_worker(queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5)
        merged = finalize_queue(queue, tmp_path / "merged.jsonl")
        assert len(merged) == 4
        assert entry.fingerprint in merged

    def test_finalize_refuses_an_undrained_queue(self, queue, tmp_path):
        run_worker(queue, worker_id="w0", execute=fake_execute(), max_runs=1)
        with pytest.raises(OrchestrationError, match="not drained"):
            finalize_queue(queue, tmp_path / "merged.jsonl")
        partial = finalize_queue(
            queue, tmp_path / "partial.jsonl", require_complete=False
        )
        assert len(partial) == 1

    def test_finalize_detects_a_lost_store_file(self, queue, tmp_path):
        run_worker(queue, worker_id="w0", execute=fake_execute())
        queue.worker_store_path("w0").rename(tmp_path / "lost.jsonl")
        # Another worker's store still exists but lacks the records.
        RunStore(queue.worker_store_path("w1")).append(
            SuiteRunRecord(
                spec=queue.entries()[0].spec,
                result=FakeResult(queue.entries()[0].spec),
                wall_seconds=0.1,
            ),
            fingerprint=queue.entries()[0].fingerprint,
        )
        with pytest.raises(OrchestrationError, match="missing"):
            finalize_queue(queue, tmp_path / "merged.jsonl")
        # Passing the relocated store back in repairs the merge.
        merged = finalize_queue(
            queue, tmp_path / "merged.jsonl",
            extra_stores=[tmp_path / "lost.jsonl"],
        )
        assert len(merged) == 4


class TestDistributedDeterminism:
    """The acceptance contract: N-worker finalize == serial suite store."""

    def _serial_reference(self, tmp_path):
        serial = RunStore(tmp_path / "serial.jsonl")
        CampaignSuite(SWEEP, executor="serial").run(store=serial)
        return prune_store(
            serial.path, tmp_path / "serial-canonical.jsonl", strip_timing=True
        )

    def test_two_worker_finalize_is_byte_identical_to_serial(self, queue, tmp_path):
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    run_worker,
                    queue,
                    worker_id=f"w{i}",
                    execute=execute_run,
                    lease_seconds=60.0,
                )
                for i in range(2)
            ]
            for future in futures:
                future.result()
        finalized = finalize_queue(
            queue, tmp_path / "finalized.jsonl", strip_timing=True
        )
        reference = self._serial_reference(tmp_path)
        assert finalized.path.read_bytes() == reference.path.read_bytes()

    def test_killed_worker_loses_no_runs(self, queue, tmp_path):
        """A worker dies mid-sweep; the survivor reclaims and the finalized
        store is still complete and byte-identical to the serial reference."""
        entries = queue.entries()
        # The dead worker had claimed two runs and completed neither.
        _dead_claim(queue, entries[0].fingerprint)
        _dead_claim(queue, entries[2].fingerprint)
        survivor = run_worker(
            queue, worker_id="survivor", execute=execute_run, lease_seconds=0.5
        )
        assert survivor.n_executed == 4
        assert len(survivor.stolen) == 2
        finalized = finalize_queue(
            queue, tmp_path / "finalized.jsonl", strip_timing=True
        )
        assert sorted(finalized.fingerprints()) == sorted(
            entry.fingerprint for entry in entries
        )
        reference = self._serial_reference(tmp_path)
        assert finalized.path.read_bytes() == reference.path.read_bytes()
