"""Worker-loop behaviour: draining, stealing, healing, failure modes, retry
budgets, preemptive checkpoint resume, and the distributed determinism
contract (2-worker finalize == serial suite store, kill-and-steal included)."""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.exceptions import OrchestrationError
from repro.experiments import CampaignSuite, SweepSpec, TargetSpec
from repro.experiments.suite import SuiteRunRecord, execute_run
from repro.orchestrate import (
    WorkQueue,
    finalize_queue,
    queue_progress,
    read_lease,
    run_worker,
    try_claim,
)
from repro.orchestrate.queue import atomic_write_json
from repro.store import CheckpointStore, RunStore, prune_store

SWEEP = SweepSpec(
    protocols=("im-rp", "cont-v"),
    seeds=(3, 5),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 1, "n_sequences": 4},
)


class FakeResult:
    """Deterministic stand-in for a CampaignResult (mechanics tests only)."""

    def __init__(self, spec):
        self._payload = {
            "approach": "FAKE",
            "protocol": spec.protocol,
            "seed": spec.seed,
            "run_id": spec.run_id,
        }

    def as_dict(self):
        return self._payload


def fake_execute(calls=None):
    def execute(spec, *, resume_state=None, on_cycle=None):
        if calls is not None:
            calls.append(spec.run_id)
        return FakeResult(spec), 0.01

    return execute


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue.create(tmp_path / "queue", SWEEP)


def _dead_claim(queue, fingerprint, *, worker="dead-worker", age=3600.0):
    """A claim whose owner stopped heartbeating ``age`` seconds ago."""
    stale = time.time() - age
    atomic_write_json(
        queue.claim_path(fingerprint),
        {"worker": worker, "claimed_at": stale, "heartbeat_at": stale},
    )


class TestWorkerLoop:
    def test_single_worker_drains_the_queue(self, queue):
        calls = []
        outcome = run_worker(queue, worker_id="w0", execute=fake_execute(calls))
        run_ids = [entry.spec.run_id for entry in queue.entries()]
        assert outcome.executed == run_ids == calls
        assert outcome.stolen == [] and outcome.healed == []
        store = RunStore(queue.worker_store_path("w0"))
        assert sorted(store.fingerprints()) == sorted(
            entry.fingerprint for entry in queue.entries()
        )
        assert all(queue.is_done(e.fingerprint) for e in queue.entries())

    def test_two_workers_split_without_overlap(self, queue):
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    run_worker,
                    queue,
                    worker_id=f"w{i}",
                    execute=fake_execute(),
                    lease_seconds=60.0,
                )
                for i in range(2)
            ]
            outcomes = [future.result() for future in futures]
        executed = outcomes[0].executed + outcomes[1].executed
        # O_EXCL claims + live leases: every run executed exactly once.
        assert sorted(executed) == sorted(
            entry.spec.run_id for entry in queue.entries()
        )

    def test_max_runs_stops_early(self, queue):
        outcome = run_worker(
            queue, worker_id="w0", execute=fake_execute(), max_runs=1
        )
        assert outcome.n_executed == 1
        progress = queue_progress(queue)
        assert progress.n_done == 1 and progress.n_unclaimed == 3

    def test_no_wait_returns_while_peers_hold_claims(self, queue):
        entries = queue.entries()
        for entry in entries[1:]:
            try_claim(queue.claim_path(entry.fingerprint), "live-peer")
        outcome = run_worker(
            queue, worker_id="w0", execute=fake_execute(), wait=False,
            lease_seconds=60.0,
        )
        # Only the unclaimed run was executable; the rest are held live.
        assert outcome.executed == [entries[0].spec.run_id]

    def test_worker_store_path_override(self, queue, tmp_path):
        store_path = tmp_path / "elsewhere" / "mine.jsonl"
        run_worker(
            queue, worker_id="w0", store_path=store_path, execute=fake_execute()
        )
        assert len(RunStore(store_path)) == 4
        assert queue.worker_store_paths() == []


class TestFailureModes:
    def test_stale_lease_is_reclaimed_by_a_live_worker(self, queue):
        """A worker died mid-run: its claim expires and a peer steals it."""
        victim = queue.entries()[0]
        _dead_claim(queue, victim.fingerprint)
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5
        )
        assert victim.spec.run_id in outcome.stolen
        assert outcome.n_executed == 4  # nothing lost
        assert all(queue.is_done(e.fingerprint) for e in queue.entries())
        assert read_lease(queue.claim_path(victim.fingerprint)).worker == "w1"

    def test_live_lease_is_respected_until_expiry(self, queue):
        victim = queue.entries()[0]
        _dead_claim(queue, victim.fingerprint, age=0.0)  # fresh heartbeat
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=60.0,
            wait=False,
        )
        assert victim.spec.run_id not in outcome.executed
        assert outcome.n_executed == 3

    def test_torn_claim_file_is_ignored_and_reclaimed_when_stale(self, queue):
        victim = queue.entries()[0]
        claim = queue.claim_path(victim.fingerprint)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.write_text('{"worker": "w9", "claim')  # torn mid-write
        import os

        stale = time.time() - 3600.0
        os.utime(claim, (stale, stale))
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5
        )
        assert victim.spec.run_id in outcome.stolen
        assert outcome.n_executed == 4

    def test_heal_republishes_marker_without_reexecution(self, queue):
        """Crash between store append and done marker: healed, not re-run."""
        entry = queue.entries()[0]
        store = RunStore(queue.worker_store_path("w0"))
        store.append(
            SuiteRunRecord(
                spec=entry.spec, result=FakeResult(entry.spec), wall_seconds=0.5
            ),
            fingerprint=entry.fingerprint,
        )
        assert not queue.is_done(entry.fingerprint)
        calls = []
        outcome = run_worker(queue, worker_id="w0", execute=fake_execute(calls))
        assert outcome.healed == [entry.fingerprint]
        assert entry.spec.run_id not in calls  # not re-executed
        assert queue.is_done(entry.fingerprint)
        assert queue.done_record(entry.fingerprint)["wall_seconds"] == 0.5

    def test_failing_run_releases_the_claim_and_fails_fast(self, queue):
        def exploding(spec, *, resume_state=None, on_cycle=None):
            raise RuntimeError("boom")

        with pytest.raises(OrchestrationError, match="boom"):
            run_worker(queue, worker_id="w0", execute=exploding)
        first = queue.entries()[0]
        # Claim released: a healthy peer retries immediately, nothing is lost.
        assert read_lease(queue.claim_path(first.fingerprint)) is None
        outcome = run_worker(queue, worker_id="w1", execute=fake_execute())
        assert outcome.n_executed == 4

    def test_double_execution_after_steal_merges_cleanly(self, queue, tmp_path):
        """Both the 'dead' and the stealing worker finished: dedup by
        fingerprint works because seeded results are deterministic."""
        entry = queue.entries()[0]
        # The dead worker got as far as appending to its store.
        dead_store = RunStore(queue.worker_store_path("dead"))
        dead_store.append(
            SuiteRunRecord(
                spec=entry.spec, result=FakeResult(entry.spec), wall_seconds=9.9
            ),
            fingerprint=entry.fingerprint,
        )
        _dead_claim(queue, entry.fingerprint)
        run_worker(queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5)
        merged = finalize_queue(queue, tmp_path / "merged.jsonl")
        assert len(merged) == 4
        assert entry.fingerprint in merged

    def test_finalize_refuses_an_undrained_queue(self, queue, tmp_path):
        run_worker(queue, worker_id="w0", execute=fake_execute(), max_runs=1)
        with pytest.raises(OrchestrationError, match="not drained"):
            finalize_queue(queue, tmp_path / "merged.jsonl")
        partial = finalize_queue(
            queue, tmp_path / "partial.jsonl", require_complete=False
        )
        assert len(partial) == 1

    def test_finalize_detects_a_lost_store_file(self, queue, tmp_path):
        run_worker(queue, worker_id="w0", execute=fake_execute())
        queue.worker_store_path("w0").rename(tmp_path / "lost.jsonl")
        # Another worker's store still exists but lacks the records.
        RunStore(queue.worker_store_path("w1")).append(
            SuiteRunRecord(
                spec=queue.entries()[0].spec,
                result=FakeResult(queue.entries()[0].spec),
                wall_seconds=0.1,
            ),
            fingerprint=queue.entries()[0].fingerprint,
        )
        with pytest.raises(OrchestrationError, match="missing"):
            finalize_queue(queue, tmp_path / "merged.jsonl")
        # Passing the relocated store back in repairs the merge.
        merged = finalize_queue(
            queue, tmp_path / "merged.jsonl",
            extra_stores=[tmp_path / "lost.jsonl"],
        )
        assert len(merged) == 4


class TestRetryBudgets:
    """``max_attempts``: in-place retries, failed/ markers, attempt leases."""

    def _fail_run(self, run_id, failures_left):
        budget = {"left": failures_left}

        def execute(spec, *, resume_state=None, on_cycle=None):
            if spec.run_id == run_id and budget["left"] > 0:
                budget["left"] -= 1
                raise RuntimeError("flaky")
            return FakeResult(spec), 0.01

        return execute

    def test_retry_succeeds_within_budget(self, queue):
        target = queue.entries()[0].spec.run_id
        outcome = run_worker(
            queue, worker_id="w0",
            execute=self._fail_run(target, failures_left=1), max_attempts=2,
        )
        assert outcome.n_executed == 4 and outcome.failed == []
        assert all(queue.is_done(e.fingerprint) for e in queue.entries())

    def test_budget_spent_publishes_failed_marker_and_drains(self, queue):
        entry = queue.entries()[0]
        outcome = run_worker(
            queue, worker_id="w0",
            execute=self._fail_run(entry.spec.run_id, failures_left=99),
            max_attempts=2,
        )
        # The worker did NOT raise: the poisoned run is terminated, the
        # other three completed, and the loop drained.
        assert outcome.failed == [entry.spec.run_id]
        assert outcome.n_executed == 3
        record = queue.failed_record(entry.fingerprint)
        assert record["attempts"] == 2 and "flaky" in record["error"]
        # Claim released so a manual retry (marker deleted) can reclaim.
        assert read_lease(queue.claim_path(entry.fingerprint)) is None
        progress = queue_progress(queue)
        assert progress.n_failed == 1 and progress.n_done == 3

    def test_finalize_names_failed_runs(self, queue, tmp_path):
        entry = queue.entries()[0]
        run_worker(
            queue, worker_id="w0",
            execute=self._fail_run(entry.spec.run_id, failures_left=99),
            max_attempts=2,
        )
        with pytest.raises(OrchestrationError, match=entry.spec.run_id):
            finalize_queue(queue, tmp_path / "merged.jsonl")
        partial = finalize_queue(
            queue, tmp_path / "partial.jsonl", require_complete=False
        )
        assert len(partial) == 3

    def test_stolen_claim_inherits_attempt_count(self, queue):
        """A stealer resumes the victim's budget position, not attempt 1."""
        entry = queue.entries()[0]
        stale = time.time() - 3600.0
        atomic_write_json(
            queue.claim_path(entry.fingerprint),
            {
                "worker": "dead", "claimed_at": stale,
                "heartbeat_at": stale, "attempt": 2,
            },
        )
        outcome = run_worker(
            queue, worker_id="w1", lease_seconds=0.5,
            execute=self._fail_run(entry.spec.run_id, failures_left=99),
            max_attempts=2,
        )
        # Inherited attempt 2 == budget: one failure marks it failed outright.
        assert outcome.failed == [entry.spec.run_id]
        assert queue.failed_record(entry.fingerprint)["attempts"] == 2

    def test_default_budget_keeps_fail_fast(self, queue):
        with pytest.raises(OrchestrationError, match="flaky"):
            run_worker(
                queue, worker_id="w0",
                execute=self._fail_run(queue.entries()[0].spec.run_id, 99),
            )
        assert queue.failed_fingerprints() == []


#: A long sequential campaign: 4 targets x 3 cycles = 12 checkpointable steps.
LONG_SWEEP = SweepSpec(
    protocols=("cont-v",),
    seeds=(3, 5),
    targets=TargetSpec(kind="named-pdz", seed=11),
    base={"n_cycles": 3, "n_sequences": 4},
)

#: Worker script that SIGKILLs itself after streaming KILL_AFTER checkpoints
#: of its first claimed run — a genuine mid-campaign crash (no cleanup, no
#: claim release, heartbeat dies with the process).
VICTIM_SCRIPT = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.orchestrate import run_worker
from repro.experiments.suite import execute_run

def killer(spec, *, resume_state=None, on_cycle=None):
    count = 0
    def hook(state):
        nonlocal count
        on_cycle(state)
        count += 1
        if count >= {kill_after}:
            os.kill(os.getpid(), signal.SIGKILL)
    return execute_run(spec, resume_state=resume_state, on_cycle=hook)

run_worker(
    {queue!r}, worker_id="victim", execute=killer,
    lease_seconds=30.0, checkpoint_seconds=0.0,
)
"""


def _repro_src():
    return str(Path(repro.__file__).resolve().parent.parent)


def entry_run_ids(queue):
    return [entry.spec.run_id for entry in queue.entries()]


def _kill_worker_mid_campaign(queue, kill_after):
    script = VICTIM_SCRIPT.format(
        src=_repro_src(), queue=str(queue.path), kill_after=kill_after
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    return proc


class TestPreemptiveStealing:
    """SIGKILL mid-campaign → steal → resume-from-checkpoint byte-identity."""

    @pytest.fixture()
    def long_queue(self, tmp_path):
        return WorkQueue.create(tmp_path / "queue", LONG_SWEEP)

    def _serial_reference(self, tmp_path, sweep):
        serial = RunStore(tmp_path / "serial.jsonl")
        CampaignSuite(sweep, executor="serial").run(store=serial)
        return prune_store(
            serial.path, tmp_path / "serial-canonical.jsonl", strip_timing=True
        )

    def test_sigkilled_worker_resumed_byte_identically(self, long_queue, tmp_path):
        _kill_worker_mid_campaign(long_queue, kill_after=3)
        checkpoints = CheckpointStore(long_queue.checkpoints_dir)
        [fingerprint] = checkpoints.fingerprints()
        assert checkpoints.latest(fingerprint).cycle == 3
        # The victim's claim is stale (heartbeat died with the process):
        # a survivor steals it and resumes from the cycle-3 checkpoint.
        survivor = run_worker(
            long_queue, worker_id="survivor",
            execute=execute_run, lease_seconds=0.5,
        )
        assert survivor.n_executed == 2
        assert len(survivor.stolen) == 1
        assert survivor.resumed and survivor.resumed[0][1] == 3
        finalized = finalize_queue(
            long_queue, tmp_path / "finalized.jsonl", strip_timing=True
        )
        reference = self._serial_reference(tmp_path, LONG_SWEEP)
        assert finalized.path.read_bytes() == reference.path.read_bytes()
        # Finished runs leave no checkpoints behind.
        assert checkpoints.fingerprints() == []

    def test_torn_checkpoint_falls_back_one_cycle(self, long_queue, tmp_path):
        _kill_worker_mid_campaign(long_queue, kill_after=3)
        checkpoints = CheckpointStore(long_queue.checkpoints_dir)
        [fingerprint] = checkpoints.fingerprints()
        # Tear the newest checkpoint line (crash on a non-atomic FS): the
        # survivor must fall back to the cycle-2 checkpoint and still finish
        # byte-identically (re-executing exactly one extra cycle).
        path = checkpoints.path(fingerprint)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        survivor = run_worker(
            long_queue, worker_id="survivor",
            execute=execute_run, lease_seconds=0.5,
        )
        assert survivor.resumed and survivor.resumed[0][1] == 2
        finalized = finalize_queue(
            long_queue, tmp_path / "finalized.jsonl", strip_timing=True
        )
        reference = self._serial_reference(tmp_path, LONG_SWEEP)
        assert finalized.path.read_bytes() == reference.path.read_bytes()

    def test_unknown_checkpoint_schema_rejected(self, long_queue):
        _kill_worker_mid_campaign(long_queue, kill_after=3)
        checkpoints = CheckpointStore(long_queue.checkpoints_dir)
        [fingerprint] = checkpoints.fingerprints()
        path = checkpoints.path(fingerprint)
        record = json.loads(path.read_text().splitlines()[-1])
        record["schema_version"] = 99
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(OrchestrationError, match="unusable checkpoint"):
            run_worker(
                long_queue, worker_id="survivor",
                execute=execute_run, lease_seconds=0.5,
            )
        # The claim was released: discarding the bad checkpoint unblocks.
        checkpoints.discard(fingerprint)
        outcome = run_worker(
            long_queue, worker_id="survivor2",
            execute=execute_run, lease_seconds=0.5,
        )
        assert entry_run_ids(long_queue)[0] in outcome.executed
        assert all(
            long_queue.is_done(entry.fingerprint)
            for entry in long_queue.entries()
        )

    def test_status_reports_cycle_progress_of_in_flight_runs(self, long_queue):
        """A live claim with checkpoints shows cycle-granular progress and
        feeds the checkpoint-aware ETA credit."""
        from repro.core.protocols import CampaignState

        entry = long_queue.entries()[0]
        checkpoints = CheckpointStore(long_queue.checkpoints_dir)
        try_claim(long_queue.claim_path(entry.fingerprint), "parked")
        checkpoints.save(
            entry.fingerprint,
            CampaignState(
                protocol="cont-v", seed=3, cycle=9, cycles_total=12,
                restorable=True, payload={"x": 1},
            ),
            run_id=entry.spec.run_id,
            worker="parked",
        )
        progress = queue_progress(long_queue, lease_seconds=60.0)
        [running] = progress.running
        assert running.cycle == 9 and running.cycles_total == 12
        assert progress.cycles_in_flight_credit == pytest.approx(0.75)


class TestDistributedDeterminism:
    """The acceptance contract: N-worker finalize == serial suite store."""

    def _serial_reference(self, tmp_path):
        serial = RunStore(tmp_path / "serial.jsonl")
        CampaignSuite(SWEEP, executor="serial").run(store=serial)
        return prune_store(
            serial.path, tmp_path / "serial-canonical.jsonl", strip_timing=True
        )

    def test_two_worker_finalize_is_byte_identical_to_serial(self, queue, tmp_path):
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(
                    run_worker,
                    queue,
                    worker_id=f"w{i}",
                    execute=execute_run,
                    lease_seconds=60.0,
                )
                for i in range(2)
            ]
            for future in futures:
                future.result()
        finalized = finalize_queue(
            queue, tmp_path / "finalized.jsonl", strip_timing=True
        )
        reference = self._serial_reference(tmp_path)
        assert finalized.path.read_bytes() == reference.path.read_bytes()

    def test_killed_worker_loses_no_runs(self, queue, tmp_path):
        """A worker dies mid-sweep; the survivor reclaims and the finalized
        store is still complete and byte-identical to the serial reference."""
        entries = queue.entries()
        # The dead worker had claimed two runs and completed neither.
        _dead_claim(queue, entries[0].fingerprint)
        _dead_claim(queue, entries[2].fingerprint)
        survivor = run_worker(
            queue, worker_id="survivor", execute=execute_run, lease_seconds=0.5
        )
        assert survivor.n_executed == 4
        assert len(survivor.stolen) == 2
        finalized = finalize_queue(
            queue, tmp_path / "finalized.jsonl", strip_timing=True
        )
        assert sorted(finalized.fingerprints()) == sorted(
            entry.fingerprint for entry in entries
        )
        reference = self._serial_reference(tmp_path)
        assert finalized.path.read_bytes() == reference.path.read_bytes()


class TestRunTimeout:
    """``run_timeout``: the per-run wall-clock watchdog."""

    def _hang(self, run_id, seconds=10.0):
        def execute(spec, *, resume_state=None, on_cycle=None):
            if spec.run_id == run_id:
                time.sleep(seconds)
            return FakeResult(spec), 0.01

        return execute

    def test_timeout_counts_against_the_budget(self, queue):
        """A hung run is abandoned, retried, then failed with reason
        ``timeout`` — and the rest of the sweep still drains."""
        entry = queue.entries()[0]
        outcome = run_worker(
            queue, worker_id="w0",
            execute=self._hang(entry.spec.run_id),
            max_attempts=2, run_timeout=0.2,
        )
        assert outcome.failed == [entry.spec.run_id]
        assert outcome.n_executed == 3
        record = queue.failed_record(entry.fingerprint)
        assert record["reason"] == "timeout"
        assert "watchdog" in record["error"]
        # Claim released: a peer (or a marker-deleting retry) takes over
        # immediately instead of waiting out the hung worker's lease.
        assert read_lease(queue.claim_path(entry.fingerprint)) is None

    def test_timeout_with_default_budget_fails_fast(self, queue):
        entry = queue.entries()[0]
        with pytest.raises(OrchestrationError, match="watchdog"):
            run_worker(
                queue, worker_id="w0",
                execute=self._hang(entry.spec.run_id), run_timeout=0.2,
            )
        assert read_lease(queue.claim_path(entry.fingerprint)) is None

    def test_fast_runs_are_untouched_by_the_watchdog(self, queue):
        outcome = run_worker(
            queue, worker_id="w0", execute=fake_execute(), run_timeout=30.0
        )
        assert outcome.n_executed == 4 and outcome.failed == []

    def test_abandoned_zombie_is_fenced_at_its_next_cycle(self, queue):
        """The abandoned attempt's thread stops at its next cycle boundary
        instead of checkpointing (or appending) behind the worker's back."""
        from repro.core.protocols import CampaignState

        entry = queue.entries()[0]
        zombie_stopped = threading.Event()

        def looping(spec, *, resume_state=None, on_cycle=None):
            if spec.run_id != entry.spec.run_id:
                return FakeResult(spec), 0.01
            cycle = 0
            try:
                while True:
                    cycle += 1
                    on_cycle(
                        CampaignState(spec.protocol, seed=spec.seed, cycle=cycle)
                    )
                    time.sleep(0.02)
            except BaseException:
                zombie_stopped.set()
                raise

        outcome = run_worker(
            queue, worker_id="w0", execute=looping,
            max_attempts=2, run_timeout=0.3,
            checkpoint_seconds=3600.0,  # the zombie must not even get here
        )
        assert outcome.failed == [entry.spec.run_id]
        assert zombie_stopped.wait(2.0)

    def test_run_timeout_must_be_positive(self, queue):
        with pytest.raises(OrchestrationError, match="run_timeout"):
            run_worker(queue, worker_id="w0", run_timeout=0.0)


class TestPoisonQuarantine:
    """Runs that kill their workers repeatedly are quarantined, not
    re-stolen forever — but only when an explicit retry budget opts in."""

    def _crashed_claim(self, queue, fingerprint, crashes):
        stale = time.time() - 3600.0
        atomic_write_json(
            queue.claim_path(fingerprint),
            {
                "worker": "dead", "claimed_at": stale, "heartbeat_at": stale,
                "attempt": 1, "crashes": crashes,
            },
        )

    def test_crash_budget_spent_quarantines_without_executing(self, queue):
        entry = queue.entries()[0]
        # One incarnation already died; this steal records the second.
        self._crashed_claim(queue, entry.fingerprint, crashes=1)
        calls = []
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(calls),
            lease_seconds=0.5, max_attempts=2,
        )
        assert outcome.poisoned == [entry.spec.run_id]
        assert outcome.failed == [entry.spec.run_id]
        assert entry.spec.run_id not in calls  # quarantined, not re-run
        assert outcome.n_executed == 3
        record = queue.failed_record(entry.fingerprint)
        assert record["reason"] == "poison"
        assert read_lease(queue.claim_path(entry.fingerprint)) is None

    def test_first_crash_is_still_stolen_and_executed(self, queue):
        entry = queue.entries()[0]
        self._crashed_claim(queue, entry.fingerprint, crashes=0)
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(),
            lease_seconds=0.5, max_attempts=2,
        )
        assert outcome.poisoned == []
        assert entry.spec.run_id in outcome.stolen
        assert outcome.n_executed == 4

    def test_default_budget_keeps_unlimited_crash_stealing(self, queue):
        """max_attempts=1 (the original contract): a run is never condemned
        for crashing its workers, however often."""
        entry = queue.entries()[0]
        self._crashed_claim(queue, entry.fingerprint, crashes=99)
        outcome = run_worker(
            queue, worker_id="w1", execute=fake_execute(), lease_seconds=0.5
        )
        assert outcome.poisoned == []
        assert entry.spec.run_id in outcome.stolen
        assert outcome.n_executed == 4
