"""Failure-injection integration tests.

The runtime must degrade gracefully when application payloads fail: the
failing pipeline ends in FAILED, its resources are released, and every other
pipeline completes unaffected.
"""

from __future__ import annotations

import pytest

from repro.core.coordinator import CoordinatorConfig, PipelinesCoordinator
from repro.core.decision import SubPipelinePolicy
from repro.core.pipeline import PipelineConfig, PipelineStatus
from repro.core.stages import StageFactory, StageModels
from repro.protein.folding import SurrogateAlphaFold
from repro.protein.mpnn import SurrogateProteinMPNN
from repro.protein.scoring import ScoringFunction


class _FlakyAlphaFold(SurrogateAlphaFold):
    """A folding surrogate that crashes for one specific target."""

    def __init__(self, poison_target: str, **kwargs):
        super().__init__(**kwargs)
        self.poison_target = poison_target
        self.failures = 0

    def predict(self, complex_structure, landscape, sequence=None, *, stream=()):
        if complex_structure.name == self.poison_target:
            self.failures += 1
            raise RuntimeError(f"GPU OOM while folding {complex_structure.name}")
        return super().predict(complex_structure, landscape, sequence, stream=stream)


@pytest.fixture()
def flaky_factory(durations, four_targets):
    models = StageModels(
        mpnn=SurrogateProteinMPNN(seed=21),
        folding=_FlakyAlphaFold(poison_target=four_targets[1].name, seed=22),
        scoring=ScoringFunction(),
    )
    return StageFactory(models, durations), models


class TestPayloadFailureIsolation:
    def test_one_failing_target_does_not_poison_the_campaign(
        self, session, flaky_factory, four_targets
    ):
        factory, models = flaky_factory
        coordinator = PipelinesCoordinator(
            session,
            factory,
            CoordinatorConfig(
                pipeline=PipelineConfig(n_cycles=2, n_sequences=4),
                spawn_policy=SubPipelinePolicy(max_per_pipeline=0, spawn_on_rejection=False),
            ),
        )
        coordinator.add_targets(four_targets)
        records = coordinator.run()

        by_target = {record.target: record for record in records}
        poisoned = by_target[four_targets[1].name]
        assert poisoned.status is PipelineStatus.FAILED
        assert models.folding.failures >= 1
        for target in four_targets:
            if target.name == four_targets[1].name:
                continue
            assert by_target[target.name].status is PipelineStatus.COMPLETED

        # Every device is back in the free pool after the campaign.
        allocator = session.platform.allocator
        assert allocator.busy_cores() == 0
        assert allocator.busy_gpus() == 0

    def test_failed_task_recorded_in_agent(self, session, flaky_factory, four_targets):
        factory, _ = flaky_factory
        coordinator = PipelinesCoordinator(
            session,
            factory,
            CoordinatorConfig(
                pipeline=PipelineConfig(n_cycles=1, n_sequences=4),
                spawn_policy=SubPipelinePolicy(max_per_pipeline=0, spawn_on_rejection=False),
            ),
        )
        coordinator.add_targets(four_targets)
        coordinator.run()
        failed = [task for task in session.pilot.agent.tasks() if task.failed]
        assert failed
        assert all("GPU OOM" in task.stderr for task in failed)


class TestResultFinalDesignMetrics:
    def test_final_design_metrics_cover_all_targets(self, small_imrp_result, four_targets):
        final = small_imrp_result.final_design_metrics()
        assert set(final) == {target.name for target in four_targets}

    def test_final_design_metrics_take_latest_cycle(self, small_imrp_result):
        final = small_imrp_result.final_design_metrics()
        for record in small_imrp_result.pipelines:
            accepted = [c for c in record.cycles if c.accepted and c.best_metrics]
            if not accepted:
                continue
            latest = max(accepted, key=lambda c: c.cycle)
            target_final = final[latest.target]
            # The chosen metrics come from a cycle at least as late as any
            # accepted cycle of this pipeline.
            assert target_final is not None

    def test_control_final_design_metrics_from_merged_record(self, small_control_result):
        final = small_control_result.final_design_metrics()
        assert len(final) == 4
        for metrics in final.values():
            assert 0.0 <= metrics.ptm <= 1.0
