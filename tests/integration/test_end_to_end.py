"""End-to-end integration tests: full campaigns, determinism, paper claims."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import table1
from repro.core.campaign import CampaignConfig, DesignCampaign
from repro.core.decision import SubPipelinePolicy
from repro.protein.datasets import expanded_pdz_set, named_pdz_targets


class TestPaperScenarioSmall:
    """Scaled-down versions of the paper's experiments run end to end."""

    @pytest.fixture(scope="class")
    def results(self):
        targets = named_pdz_targets(seed=31)
        control = DesignCampaign(
            targets, CampaignConfig(protocol="cont-v", n_cycles=3, n_sequences=6, seed=31)
        ).run()
        adaptive = DesignCampaign(
            targets, CampaignConfig(protocol="im-rp", n_cycles=3, n_sequences=6, seed=31)
        ).run()
        return control, adaptive

    def test_adaptive_wins_on_every_quality_metric(self, results):
        control, adaptive = results
        control_final = control.iteration_summary()[max(control.iteration_summary())]
        adaptive_final = adaptive.iteration_summary()[max(adaptive.iteration_summary())]
        assert adaptive_final["plddt"]["median"] > control_final["plddt"]["median"]
        assert adaptive_final["ptm"]["median"] > control_final["ptm"]["median"]
        assert adaptive_final["interchain_pae"]["median"] < control_final["interchain_pae"]["median"]

    def test_adaptive_is_more_consistent(self, results):
        control, adaptive = results
        control_final = control.iteration_summary()[max(control.iteration_summary())]
        adaptive_final = adaptive.iteration_summary()[max(adaptive.iteration_summary())]
        assert adaptive_final["plddt"]["std"] < control_final["plddt"]["std"] * 1.5

    def test_adaptive_examines_more_trajectories(self, results):
        control, adaptive = results
        assert adaptive.n_trajectories > control.n_trajectories

    def test_adaptive_uses_resources_better(self, results):
        control, adaptive = results
        assert adaptive.cpu_utilization > 2 * control.cpu_utilization
        assert adaptive.gpu_utilization > control.gpu_utilization
        # Concurrency shortens wall-clock even though aggregate work grows.
        assert adaptive.makespan_hours < control.makespan_hours
        assert adaptive.total_task_hours > control.total_task_hours

    def test_table1_claims_all_hold(self, results):
        control, adaptive = results
        assert all(table1(control, adaptive)["claims"].values())

    def test_quality_improves_monotonically_under_adaptivity(self, results):
        _, adaptive = results
        summary = adaptive.iteration_summary()
        medians = [summary[i]["plddt"]["median"] for i in sorted(summary)]
        assert medians[-1] > medians[0]
        # Each adaptive iteration's cohort median never collapses below the baseline.
        assert all(median >= medians[0] - 1e-9 for median in medians[1:])


class TestDeterminism:
    def test_same_seed_same_scientific_outcome(self):
        targets = named_pdz_targets(seed=41)
        config = CampaignConfig(protocol="im-rp", n_cycles=2, n_sequences=5, seed=41)
        first = DesignCampaign(named_pdz_targets(seed=41), config).run()
        second = DesignCampaign(targets, config).run()
        assert first.n_trajectories == second.n_trajectories
        assert first.n_subpipelines == second.n_subpipelines
        assert first.net_deltas() == pytest.approx(second.net_deltas())
        assert first.cpu_utilization == pytest.approx(second.cpu_utilization)
        first_sequences = sorted(t.sequence for t in first.trajectories)
        second_sequences = sorted(t.sequence for t in second.trajectories)
        assert first_sequences == second_sequences

    def test_different_seed_changes_outcome(self):
        config_a = CampaignConfig(protocol="im-rp", n_cycles=2, n_sequences=5, seed=1)
        config_b = CampaignConfig(protocol="im-rp", n_cycles=2, n_sequences=5, seed=2)
        result_a = DesignCampaign(named_pdz_targets(seed=1), config_a).run()
        result_b = DesignCampaign(named_pdz_targets(seed=2), config_b).run()
        assert sorted(t.sequence for t in result_a.trajectories) != sorted(
            t.sequence for t in result_b.trajectories
        )


class TestExpandedCampaign:
    """A scaled-down Fig 3 scenario: many targets, adaptivity off in the last cycle."""

    def test_final_cycle_deteriorates_without_adaptivity(self):
        targets = expanded_pdz_set(n_targets=16, seed=51)
        config = CampaignConfig(
            protocol="im-rp",
            n_cycles=4,
            n_sequences=6,
            seed=51,
            adaptivity_schedule=(True, True, True, False),
            spawn_policy=SubPipelinePolicy(max_per_pipeline=1),
        )
        result = DesignCampaign(targets, config).run()
        summary = result.iteration_summary()
        iterations = sorted(summary)
        plddt = [summary[i]["plddt"]["median"] for i in iterations]
        # Improvement through the adaptive cycles...
        assert plddt[3] > plddt[0]
        assert plddt[2] > plddt[1] or plddt[3] > plddt[1]
        # ...and a drop (or at best stagnation) once adaptivity is removed.
        assert plddt[4] < plddt[3]

    def test_many_targets_all_complete(self):
        targets = expanded_pdz_set(n_targets=10, seed=61)
        config = CampaignConfig(protocol="im-rp", n_cycles=2, n_sequences=5, seed=61)
        result = DesignCampaign(targets, config).run()
        assert result.n_pipelines == 10
        assert result.n_trajectories >= 20


class TestFailureResilience:
    def test_landscape_mismatch_does_not_crash_campaign_setup(self):
        # Building campaigns for heterogeneous target sizes (different
        # receptor lengths) must work: each pipeline carries its own target.
        targets = expanded_pdz_set(n_targets=5, seed=71)
        lengths = {len(t.complex.receptor) for t in targets}
        assert len(lengths) > 1
        result = DesignCampaign(
            targets, CampaignConfig(protocol="im-rp", n_cycles=1, n_sequences=4, seed=71)
        ).run()
        assert result.n_pipelines == 5
